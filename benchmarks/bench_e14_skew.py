"""E14 — skew-aware adaptive execution: runtime reduce-partition splitting.

One hot key holding >= 80% of all records turns a reduce stage into a
single-straggler job: one task does (almost) all the grouping work while the
other workers idle.  With ``skew_split_factor`` armed, the adaptive layer
detects the fat reduce partition from *actual* map-output bytes and serves
it as parallel sub-reads over disjoint map-output slices, re-merged to
byte-identical results.

What the three measured quantities mean:

* ``wall`` — local wall-clock of the job.  The local executor runs Python
  threads under the GIL, so CPU-bound reduce work cannot speed up locally
  (the same caveat E9 documents); this column is the no-regression guard.
* ``straggler`` — the slowest task of the job.  This is what skew splitting
  attacks directly: the hot partition's work spreads over sub-read tasks.
* ``sim small-4`` — the cost model's estimated wall-clock of the measured
  task structure on the built-in 16-slot cluster profile (the paper's
  model-driven what-if deployment, exactly what E6 sweeps).  On a cluster
  with real task parallelism a stage cannot finish faster than its slowest
  task, so shrinking the straggler is what shrinks the estimated wall-clock.
  The profile feeding the model is collected on a sequential
  (``num_workers=1``) run: concurrent GIL-bound tasks inflate each other's
  measured wall time, which would pollute per-task durations — sequential
  execution is the documented way to collect a clean, deterministic profile.

The skewed join improves less than the skewed groupBy: only the cogroup
grouping is split, while the join's pair-emitting flat_map (proportional to
the join's output) still runs in the stream-side result task.

Emits ``results/BENCH_E14.json`` via :func:`bench_utils.emit_json`.
"""

from __future__ import annotations

import time

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.simulator import BUILTIN_PROFILES, CostModel

from .bench_utils import emit_json, emit_table

ROWS = 1_000_000
MAPS = 8
WORKERS = 4
REPS = 3
HOT_SHARE = 8  # of 10 records carry the hot key (80%)
PROFILE = "small-4"

#: Assertion floors (the headline numbers land well above them; the floors
#: leave room for CI timer noise).
GROUPBY_SIM_TARGET = 2.0
GROUPBY_STRAGGLER_TARGET = 2.0
JOIN_STRAGGLER_TARGET = 1.2
NO_REGRESSION = 0.8
UNIFORM_NO_REGRESSION = 0.85


def _engine(skew_on: bool, workers: int = WORKERS) -> EngineContext:
    return EngineContext(EngineConfig(
        num_workers=workers, default_parallelism=MAPS, seed=0,
        broadcast_threshold_bytes=0,  # force the shuffle join path
        skew_split_factor=8 if skew_on else 0,
        skew_min_partition_bytes=64 * 1024))


def _skewed_pairs():
    return [(0 if i % 10 < HOT_SHARE else (i % 211) + 1, i)
            for i in range(ROWS)]


def _uniform_pairs():
    return [(i % 211, i) for i in range(ROWS)]


DIM = [(k, f"dim-{k}") for k in range(212)]


def _groupby_job(ctx, pairs):
    return (ctx.parallelize(pairs, MAPS)
            .group_by_key(MAPS).map_values(len))


def _join_job(ctx, pairs):
    fact = ctx.parallelize(pairs, MAPS)
    dim = ctx.parallelize(DIM, 2)
    return fact.join(dim, MAPS)


WORKLOADS = (
    ("skewed groupBy", _skewed_pairs, _groupby_job,
     lambda ds: ds.collect()),
    ("skewed join", _skewed_pairs, _join_job,
     lambda ds: ds.count()),
    ("uniform groupBy", _uniform_pairs, _groupby_job,
     lambda ds: ds.collect()),
)


def _measure(build, action, pairs, skew_on: bool, workers: int = WORKERS):
    """Warm the shuffle (stamping split plans), then best-of-REPS metrics."""
    model = CostModel()
    profile = BUILTIN_PROFILES[PROFILE]
    with _engine(skew_on, workers) as ctx:
        dataset = build(ctx, pairs)
        result = action(dataset)  # runs the shuffle; adaptive replan stamps
        walls, stragglers, simulated_walls, splits = [], [], [], []
        for _ in range(REPS):
            started = time.perf_counter()
            repeat = action(dataset)
            walls.append(time.perf_counter() - started)
            assert repeat == result, "re-running the action changed the result"
            job = ctx.metrics.jobs[-1]
            stragglers.append(max(stage.max_task_duration_s
                                  for stage in job.stages))
            simulated_walls.append(
                model.estimate_job(job, profile).estimated_wall_clock_s)
            splits.append(job.skew_splits)
        # best-of per metric: thread-scheduling jitter hits individual reps
        return (result, min(walls), min(stragglers), min(simulated_walls),
                max(splits))


def _measure_both(build, action, pairs, skew_on: bool):
    """Wall/straggler at ``num_workers=4`` + a sequential cost-model profile.

    The sequential wall also serves as the low-jitter no-regression signal:
    equal-task stages under 4 contending threads see ±20% scheduling noise,
    while the single-threaded wall is stable run to run.
    """
    result, wall, straggler, _, splits = _measure(build, action, pairs,
                                                  skew_on, WORKERS)
    profiled, seq_wall, _, simulated, _ = _measure(build, action, pairs,
                                                   skew_on, 1)
    assert profiled == result, "sequential profile changed the result"
    return result, wall, seq_wall, straggler, simulated, splits


def test_e14_skew_split(benchmark):
    """Skewed groupBy: >=2x straggler and simulated-cluster improvement."""
    rows = []
    ratios = {}
    for name, make_pairs, build, action in WORKLOADS:
        pairs = make_pairs()
        off = _measure_both(build, action, pairs, skew_on=False)
        on = _measure_both(build, action, pairs, skew_on=True)
        assert on[0] == off[0], f"{name}: split results diverged"
        ratios[name] = {"wall": off[2] / on[2],  # sequential: low jitter
                        "straggler": off[3] / on[3],
                        "sim": off[4] / on[4],
                        "splits": on[5],
                        "splits_off": off[5]}
        rows.append((name,
                     off[1] * 1000, on[1] * 1000,
                     off[3] * 1000, on[3] * 1000,
                     off[4] * 1000, on[4] * 1000,
                     off[3] / on[3], off[4] / on[4], on[5]))

    benchmark.pedantic(
        _measure, args=(_groupby_job, lambda ds: ds.collect(),
                        _skewed_pairs(), True),
        rounds=3, iterations=1)

    headers = ["workload", "wall off ms", "wall on ms",
               "straggler off ms", "straggler on ms",
               f"sim {PROFILE} off ms", f"sim {PROFILE} on ms",
               "straggler speedup", "sim speedup", "skew splits"]
    notes = [
        f"{ROWS} rows, {MAPS} partitions, num_workers={WORKERS}, one key "
        f"holding {HOT_SHARE * 10}% of records, skew_split_factor=8 vs 0, "
        f"best of {REPS} warm runs, identical results asserted per workload; "
        f"the sim {PROFILE} columns extrapolate a clean sequential "
        "(num_workers=1) profile of the same jobs, E6-style",
        "local wall cannot improve for CPU-bound Python under the GIL (see "
        "E9) and must merely not regress; the straggler task and the cost "
        "model's estimated cluster wall-clock are where runtime splitting "
        "pays, since a real cluster's stage waits for its slowest task",
        "the skewed join gains less: only the cogroup grouping splits, the "
        "pair-emitting flat_map still runs in the stream-side result task",
        "uniform groupBy is the no-regression guard: no partition qualifies "
        "as skewed, no split stage runs",
    ]
    emit_table("E14", "skew-aware runtime partition splitting", headers, rows,
               notes=notes)
    emit_json("E14", "skew-aware runtime partition splitting", headers, rows,
              notes=notes)

    groupby = ratios["skewed groupBy"]
    assert groupby["splits"] >= 1
    assert groupby["splits_off"] == 0
    assert groupby["straggler"] >= GROUPBY_STRAGGLER_TARGET, \
        f"groupBy straggler speedup {groupby['straggler']:.2f}x below target"
    assert groupby["sim"] >= GROUPBY_SIM_TARGET, \
        f"groupBy simulated speedup {groupby['sim']:.2f}x below target"
    assert groupby["wall"] >= NO_REGRESSION, \
        f"groupBy local wall regressed: {groupby['wall']:.2f}x"

    join = ratios["skewed join"]
    assert join["splits"] >= 1
    assert join["straggler"] >= JOIN_STRAGGLER_TARGET, \
        f"join straggler speedup {join['straggler']:.2f}x below target"
    assert join["wall"] >= NO_REGRESSION, \
        f"join local wall regressed: {join['wall']:.2f}x"

    uniform = ratios["uniform groupBy"]
    assert uniform["splits"] == 0, "uniform data must not split"
    assert uniform["wall"] >= UNIFORM_NO_REGRESSION, \
        f"uniform local wall regressed: {uniform['wall']:.2f}x"
    assert uniform["sim"] >= UNIFORM_NO_REGRESSION, \
        f"uniform simulated wall regressed: {uniform['sim']:.2f}x"
