"""E4 — comparing many runs of a composite BDA is cheap and informative.

Claim exercised (paper §3): "this kind of experience is usually not available
in the professional Big Data platforms today in the market, where the
architectural and data complexity make it difficult to compare different runs
of a composite BDA".  The experiment scales the number of compared runs from
2 to 32 and reports the cost of producing the comparison report and how much
information (rows × runs, distinct winners) it contains — showing that the
comparison machinery itself never becomes the bottleneck of a Labs session.
"""

from __future__ import annotations

import copy
import time

from repro.core.campaign import CampaignRunner
from repro.core.compiler import CampaignCompiler
from repro.labs.comparison import RunComparator

from .bench_utils import churn_spec, emit_table

RUN_COUNTS = (2, 4, 8, 16, 32)
MODELS = ("logistic_regression", "decision_tree", "naive_bayes", "baseline")


def _base_runs():
    """Four genuinely different runs; larger sets are label-perturbed copies."""
    compiler = CampaignCompiler()
    runner = CampaignRunner(compiler.catalog)
    runs = []
    for model in MODELS:
        campaign = compiler.compile(churn_spec(num_records=2000, model=model))
        runs.append(runner.run(campaign, option_label=model))
    return runs


def _expand(runs, count):
    expanded = []
    for index in range(count):
        run = copy.deepcopy(runs[index % len(runs)])
        run.option_label = f"{run.option_label}-v{index}"
        expanded.append(run)
    return expanded


def test_e4_run_comparison_scaling(benchmark):
    """Comparison latency and content as the number of compared runs grows."""
    base_runs = _base_runs()
    comparator = RunComparator()
    rows = []
    for count in RUN_COUNTS:
        runs = _expand(base_runs, count)
        started = time.perf_counter()
        report = comparator.compare(runs)
        elapsed_ms = (time.perf_counter() - started) * 1000
        winners = {winner for winner in report.winners().values() if winner}
        rows.append((count, len(report.rows), len(report.rows) * count,
                     len(winners), elapsed_ms))
    emit_table("E4", "run-comparison cost and content vs number of runs",
               ["runs compared", "indicator rows", "cells", "distinct winners",
                "compare ms"],
               rows,
               notes=["comparison cost grows linearly in runs x indicators and stays "
                      "in the milliseconds, so a trainee can diff an entire session "
                      "interactively"])

    runs_16 = _expand(base_runs, 16)
    benchmark(lambda: comparator.compare(runs_16))
