"""E8 — the Labs scale to classes of trainees on free-limited quotas.

Claim exercised (paper §3): TOREADOR Labs provide "free-limited access ...
using a Platform-as-a-Service solution", i.e. many trainees share one
platform under quotas.  The experiment submits one small campaign per trainee
for growing class sizes, and reports platform throughput, mean per-campaign
latency, fairness (every trainee gets exactly their runs) and the quota
machinery kicking in.
"""

from __future__ import annotations

import time

from repro.config import PlatformConfig
from repro.errors import QuotaExceededError
from repro.platform.api import BDAaaSPlatform

from .bench_utils import churn_spec, emit_table

CLASS_SIZES = (1, 4, 8, 16)


def _trainee_spec() -> dict:
    spec = churn_spec(num_records=1200, num_partitions=2, model="naive_bayes",
                      policy="open_data")
    spec["deployment"]["num_workers"] = 1
    return spec


def test_e8_concurrent_trainees(benchmark):
    """Throughput and fairness as the number of trainees grows."""
    rows = []
    for class_size in CLASS_SIZES:
        platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=5))
        started = time.perf_counter()
        workspaces = []
        for index in range(class_size):
            trainee = platform.register_user(f"trainee-{index}", role="trainee")
            workspace = platform.create_workspace(trainee, f"w-{index}")
            platform.submit_campaign(trainee, workspace, _trainee_spec())
            workspaces.append(workspace)
        elapsed = time.perf_counter() - started
        stats = platform.job_statistics()
        fair = all(len(workspace.runs) == 1 for workspace in workspaces)
        rows.append((class_size, stats["succeeded"], elapsed,
                     elapsed / class_size, class_size / elapsed,
                     "yes" if fair else "no"))
    emit_table("E8", "one shared platform, many free-tier trainees",
               ["trainees", "campaigns ok", "total s", "s per campaign",
                "campaigns/s", "fair isolation"],
               rows,
               notes=["per-campaign latency stays flat as the class grows: tenant "
                      "bookkeeping is negligible next to pipeline execution",
                      "every trainee's workspace holds exactly their own run — the "
                      "isolation the free-limited PaaS tier promises"])

    # quota behaviour: the 6th submission of a 5-job tier must be rejected
    platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=5))
    trainee = platform.register_user("greedy", role="trainee")
    workspace = platform.create_workspace(trainee, "w")
    for _ in range(5):
        platform.submit_campaign(trainee, workspace, _trainee_spec())
    try:
        platform.submit_campaign(trainee, workspace, _trainee_spec())
        quota_enforced = False
    except QuotaExceededError:
        quota_enforced = True
    assert quota_enforced

    # benchmarked quantity: one trainee submission on a warm platform
    platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=1000))
    trainee = platform.register_user("bench", role="trainee")
    workspace = platform.create_workspace(trainee, "bench-w")
    benchmark.pedantic(
        lambda: platform.submit_campaign(trainee, workspace, _trainee_spec()),
        rounds=3, iterations=1)
