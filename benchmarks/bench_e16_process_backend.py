"""E16 — process execution backend: measured (not simulated) speedups.

Every multi-worker wall-clock before this experiment was either GIL-bound
(threads cannot speed up CPU-bound Python, the E9/E14 caveat) or simulated
(the cost model extrapolating a sequential profile, E6/E14).  The process
backend removes both asterisks: tasks run in forked worker processes, map
output crosses the process boundary through pickle-framed spill-file
transport frames, and the wall-clock column below is an actual measurement
of parallel CPU-bound execution.

Measured configurations of the same CPU-bound shuffle workload (a hash-heavy
map feeding a reduce_by_key):

* ``thread x1`` — sequential baseline, the clean per-task profile.
* ``thread x4`` — the old backend's best case; under the GIL this cannot
  beat the sequential run on CPU-bound work.
* ``process x2`` — the CI smoke configuration (runners guarantee 2 cores).
* ``process x4`` — the headline: real multi-core speedup.

Results are asserted identical across every configuration, and all
non-timing job metrics of the process run must equal the thread run's — the
backend changes *where* tasks execute, never what they compute or report.

The >= 2x speedup assertion is gated on the hardware actually owning >= 4
CPU cores: on a 1-core container every backend serializes and the honest
measurement is "no speedup available", which the emitted ``cpu count``
column records.  Emits ``results/BENCH_E16.json`` via
:func:`bench_utils.emit_json`.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext

from .bench_utils import emit_json, emit_table

if not serializer.supports_closures():  # pragma: no cover - cloudpickle ships
    pytest.skip("the process backend benchmark needs cloudpickle",
                allow_module_level=True)

ROWS = 120_000
BURN_ITERATIONS = 150
MAPS = 8
REDUCERS = 8
WORKERS = 4
SMOKE_WORKERS = 2
REPS = 3

#: Measured multi-core floor, asserted only when the host has >= 4 cores;
#: the issue's 2x target with headroom removed — fork/IPC overhead is real.
SPEEDUP_TARGET = 2.0
#: Keys that legitimately differ between backends.
TIMING_KEYS = ("wall_clock_s", "total_task_time_s")


def _burn(pair):
    key, value = pair
    acc = value
    for _ in range(BURN_ITERATIONS):
        acc = (acc * 1_103_515_245 + 12_345) % 2_147_483_647
    return key, acc


def _add(a, b):
    return a + b


def _pairs():
    return [(i % 64, i) for i in range(ROWS)]


def _engine(backend: str, workers: int) -> EngineContext:
    return EngineContext(EngineConfig(
        num_workers=workers, default_parallelism=MAPS, seed=0,
        executor_backend=backend))


def _job(ctx, pairs):
    return (ctx.parallelize(pairs, MAPS)
            .map(_burn)
            .reduce_by_key(_add, REDUCERS))


def _measure(backend: str, workers: int, pairs):
    """Warm run (pool spawn + shuffle), then best-of-REPS cold shuffles."""
    with _engine(backend, workers) as ctx:
        dataset = _job(ctx, pairs)
        result = dataset.collect()  # warm: forks the pool, stamps plans
        walls = []
        for _ in range(REPS):
            fresh = _job(ctx, pairs)  # a fresh lineage re-runs the shuffle
            started = time.perf_counter()
            repeat = fresh.collect()
            walls.append(time.perf_counter() - started)
            assert repeat == result, "re-running the workload changed results"
        summary = ctx.metrics.summary()
        comparable = {key: value for key, value in summary.items()
                      if key not in TIMING_KEYS}
        return result, min(walls), comparable


def test_e16_process_backend(benchmark):
    """Process workers: identical results/metrics, measured wall-clock."""
    pairs = _pairs()
    cpu_count = os.cpu_count() or 1

    configs = (("thread", 1), ("thread", WORKERS),
               ("process", SMOKE_WORKERS), ("process", WORKERS))
    measured = {}
    for backend, workers in configs:
        measured[(backend, workers)] = _measure(backend, workers, pairs)

    baseline_result, thread_wall, thread_metrics = measured[("thread", WORKERS)]
    for (backend, workers), (result, _, metrics) in measured.items():
        assert result == baseline_result, \
            f"{backend} x{workers} changed the result"
        assert metrics == thread_metrics, \
            f"{backend} x{workers} changed non-timing job metrics"

    benchmark.pedantic(_measure, args=("process", SMOKE_WORKERS, pairs),
                       rounds=1, iterations=1)

    process_wall = measured[("process", WORKERS)][1]
    speedup = thread_wall / process_wall
    headers = ["backend", "workers", "wall ms", "speedup vs thread x4",
               "cpu count"]
    rows = [(backend, workers, wall * 1000, thread_wall / wall, cpu_count)
            for (backend, workers), (_, wall, _) in measured.items()]
    notes = [
        f"{ROWS} rows, {MAPS} map / {REDUCERS} reduce partitions, "
        f"{BURN_ITERATIONS} LCG iterations per record, best of {REPS} warm "
        "runs after a pool-spawning warm-up; identical results and identical "
        "non-timing metrics asserted across every configuration",
        "thread x4 cannot beat thread x1 on CPU-bound Python (GIL); the "
        "process rows are the first *measured* parallel wall-clocks in this "
        "repo — everything earlier was simulated from sequential profiles",
        f"speedup assertions are hardware-gated: this run saw "
        f"{cpu_count} CPU core(s); the >= {SPEEDUP_TARGET}x process-x4 "
        "floor is only asserted when >= 4 cores are available",
    ]
    emit_table("E16", "process execution backend (measured speedup)",
               headers, rows, notes=notes)
    emit_json("E16", "process execution backend (measured speedup)",
              headers, rows, notes=notes)

    if cpu_count >= 4:
        assert speedup >= SPEEDUP_TARGET, \
            (f"process x{WORKERS} speedup {speedup:.2f}x below "
             f"{SPEEDUP_TARGET}x on a {cpu_count}-core host")
    elif cpu_count >= 2:
        smoke_wall = measured[("process", SMOKE_WORKERS)][1]
        assert thread_wall / smoke_wall >= 1.2, \
            (f"process x{SMOKE_WORKERS} should beat the GIL-bound thread "
             f"pool on a {cpu_count}-core host")
    else:
        # single core: no parallelism to win; just bound the overhead
        assert process_wall <= thread_wall * 3.0, \
            (f"process backend overhead {process_wall / thread_wall:.2f}x "
             "on a single-core host exceeds the documented bound")
