"""E19 — networked shuffle: TCP transport overhead and resilience pricing.

PR 9 put the shuffle on a real socket: map output travels a length-prefixed
TCP protocol through a retrying, CRC-verifying fetch client, with worker
heartbeats, blacklisting and speculative execution layered on top.  This
experiment prices the wire: the same CPU-bound shuffle workload runs on
the local shared-file transport, on clean TCP, on TCP with seeded
connection drops (the retry/backoff ladder engages), and with an injected
straggler that speculation races (and beats).

Assertions are hardware-independent: every configuration must return
*identical* results, drops must surface as counted ``fetch_retries``,
and the straggler run must report at least one ``speculative_launches``
and one ``speculative_wins``.  Wall-clock ratios are recorded, never
asserted (socket and backoff costs are host-dependent) — the one-core CI
runner only checks the invariants.

Emits ``results/BENCH_E19.json`` via :func:`bench_utils.emit_json`.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext

from .bench_utils import emit_json, emit_table

if not serializer.supports_closures():  # pragma: no cover - cloudpickle ships
    pytest.skip("the network-shuffle benchmark needs cloudpickle for the "
                "process backend", allow_module_level=True)

ROWS = 40_000
BURN_ITERATIONS = 40
MAPS = 8
REDUCERS = 4
WORKERS = 2
REPS = 3
SEED = 15

#: Straggler injected for the speculation configuration: the marked pair
#: sleeps this long on its first attempt, far beyond the speculation
#: threshold of the surrounding sub-second tasks.
STRAGGLE_S = 1.0

#: (label, config overrides, counters that must be non-zero).
CONFIGS = (
    ("local transport", {"shuffle_transport": "local"}, ()),
    ("tcp clean", {"shuffle_transport": "tcp"}, ()),
    ("tcp + drops", {"shuffle_transport": "tcp", "network_drop_rate": 0.15,
                     "fetch_max_retries": 6, "fetch_backoff_s": 0.001},
     ("fetch_retries",)),
)

RESILIENCE_KEYS = ("fetch_retries", "speculative_launches",
                   "speculative_wins", "blacklisted_workers")


def _burn(pair):
    key, value = pair
    acc = value
    for _ in range(BURN_ITERATIONS):
        acc = (acc * 1_103_515_245 + 12_345) % 2_147_483_647
    return key, acc


def _add(a, b):
    return a + b


def _pairs():
    return [(i % 64, i) for i in range(ROWS)]


def _measure(overrides, pairs, mapper=_burn):
    """Median wall-clock of REPS fresh contexts (server + pool spawn included).

    Each repetition builds a fresh context so the seeded network chaos —
    a pure function of ``(seed, span, attempt)`` — replays identically;
    retries, backoff sleeps and recovery are all part of the measured
    wall-clock, exactly as a user would experience them.
    """
    walls, results, summaries = [], [], []
    for _ in range(REPS):
        config = EngineConfig(num_workers=WORKERS, default_parallelism=MAPS,
                              seed=SEED, executor_backend="process",
                              **overrides)
        started = time.perf_counter()
        with EngineContext(config) as ctx:
            result = (ctx.parallelize(pairs, MAPS)
                      .map(mapper)
                      .reduce_by_key(_add, REDUCERS)
                      .collect())
            summaries.append(ctx.metrics.summary())
        walls.append(time.perf_counter() - started)
        results.append(result)
    assert all(result == results[0] for result in results), \
        "the seeded network chaos must replay identically"
    return results[0], sorted(walls)[len(walls) // 2], summaries[0]


def _measure_speculation(pairs):
    """One run with an injected straggler that a speculative duplicate races.

    The marker file makes the straggle fire exactly once per context: the
    original attempt stalls, the duplicate (launched once the stage passes
    the completion quantile) runs it glitch-free and wins.
    """
    walls, results, summaries = [], [], []
    for _ in range(REPS):
        marker = tempfile.mktemp(prefix="bench-e19-straggler-")

        def stumble(pair, _marker=marker):
            if pair[1] == 0 and not os.path.exists(_marker):
                with open(_marker, "w"):
                    pass
                time.sleep(STRAGGLE_S)
            return _burn(pair)

        config = EngineConfig(num_workers=WORKERS, default_parallelism=MAPS,
                              seed=SEED, executor_backend="process",
                              speculation_multiplier=3.0,
                              speculation_quantile=0.5)
        started = time.perf_counter()
        try:
            with EngineContext(config) as ctx:
                result = (ctx.parallelize(pairs, MAPS)
                          .map(stumble)
                          .reduce_by_key(_add, REDUCERS)
                          .collect())
                summaries.append(ctx.metrics.summary())
        finally:
            if os.path.exists(marker):
                os.unlink(marker)
        walls.append(time.perf_counter() - started)
        results.append(result)
    assert all(result == results[0] for result in results)
    return results[0], sorted(walls)[len(walls) // 2], summaries[0]


def test_e19_network_shuffle(benchmark):
    """TCP shuffle: identical results, counted retries, winning speculation."""
    pairs = _pairs()

    measured = {}
    for label, overrides, required in CONFIGS:
        measured[label] = _measure(overrides, pairs)
    measured["speculative straggler"] = _measure_speculation(pairs)

    clean_result, clean_wall, clean_summary = measured["local transport"]
    for key in RESILIENCE_KEYS:
        assert clean_summary[key] == 0, \
            f"the local fault-free run must not report {key}"
    tcp_summary = measured["tcp clean"][2]
    assert tcp_summary["fetch_retries"] == 0, \
        "clean TCP must not consume retries"

    for label, overrides, required in CONFIGS[1:]:
        result, _, summary = measured[label]
        assert result == clean_result, \
            f"transport '{label}' changed the results"
        for key in required:
            assert summary[key] > 0, \
                (f"'{label}' injected no faults ({key} == 0) — the "
                 "configuration measures nothing; raise the rate or "
                 "change the seed")

    spec_result, _, spec_summary = measured["speculative straggler"]
    assert spec_result == clean_result, \
        "speculation changed the results"
    assert spec_summary["speculative_launches"] > 0, \
        "the straggler never triggered a speculative duplicate"
    assert spec_summary["speculative_wins"] > 0, \
        "no speculative duplicate beat the straggler"

    benchmark.pedantic(_measure, args=({"shuffle_transport": "tcp"}, pairs),
                       rounds=1, iterations=1)

    headers = ["configuration", "wall ms", "overhead vs local",
               "fetch retries", "speculative launches", "speculative wins",
               "stage retries"]
    rows = [(label, wall * 1000, wall / clean_wall,
             summary["fetch_retries"], summary["speculative_launches"],
             summary["speculative_wins"], summary["stage_retries"])
            for label, (result, wall, summary) in measured.items()]
    notes = [
        f"{ROWS} rows, {MAPS} map / {REDUCERS} reduce partitions, "
        f"{WORKERS} process workers, seed {SEED}; median of {REPS} fresh "
        "contexts per configuration, shuffle server and pool spawn included",
        "every configuration returned results identical to the local "
        "shared-file transport (asserted); drops surfaced as counted fetch "
        "retries and the injected straggler lost its race to a speculative "
        "duplicate (asserted); overhead ratios are recorded, not asserted "
        "— socket hops and backoff sleeps are host-dependent",
        "network chaos is a pure function of (seed, span, attempt): the "
        "same drop schedule replays on every repetition and every host; "
        f"the straggler sleeps {STRAGGLE_S}s on its first attempt only",
    ]
    emit_table("E19", "networked shuffle: TCP transport and resilience",
               headers, rows, notes=notes)
    emit_json("E19", "networked shuffle: TCP transport and resilience",
              headers, rows, notes=notes)
