"""E17 — columnar batches, projection-aware scans, compressed spill frames.

Two measured claims from this experiment:

* **Scan-bound projection throughput.**  A wide schema-bearing scan counted
  through a two-field projection.  The row path materialises every record as
  a full dict, projects it record-at-a-time and counts the survivors.  The
  columnar path folds the projection into the scan (only the two referenced
  column vectors are ever touched) and counts batches by their stored
  length, without materialising row dicts at all.  Three configurations
  isolate the two effects: full-width rows, pruned rows (pushdown only),
  and pruned columns (pushdown + ``columnar_enabled``).

* **Spill-byte reduction.**  A spill-heavy ``group_by_key`` over repetitive
  web-log-style values under a tiny shuffle-memory cap, spilled once with
  ``spill_codec="none"`` and once with ``"zlib"``.  ``spill_bytes`` counts
  the payload bytes actually written to spill files, so the ratio is a
  measured on-disk reduction, not an estimate.

Results are asserted identical across every configuration.  Emits
``results/BENCH_E17.json`` via :func:`bench_utils.emit_json`.  The lz4
codec is used automatically when the package is importable (one CI matrix
leg installs it); the emitted table records which codec ``auto`` resolved
to on this host.
"""

from __future__ import annotations

import time

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.memory import codec_name, resolve_codec
from repro.data.schemas import Field, Schema
from repro.data.sources import InMemorySource

from .bench_utils import emit_json, emit_table

ROWS = 60_000
PARTITIONS = 8
REPS = 3
BATCH_SIZE = 4096
#: The issue's acceptance floors.
SCAN_SPEEDUP_TARGET = 2.0
SPILL_REDUCTION_TARGET = 2.0

WIDE_SCHEMA = Schema(name="wide_events", fields=tuple(
    Field(name, "str" if name in ("url", "service") else "int")
    for name in ("ts", "ip", "user", "url", "method", "status",
                 "latency", "service")))

TIMING_KEYS = ("wall_clock_s", "total_task_time_s")


def _wide_rows():
    return [{"ts": i, "ip": i % 251, "user": i % 97,
             "url": f"/api/items?page={i % 20}", "method": i % 4,
             "status": 200 if i % 17 else 500, "latency": (i * 7) % 900,
             "service": "frontend" if i % 3 else "checkout"}
            for i in range(ROWS)]


def _scan_engine(columnar: bool, pushdown: bool) -> EngineContext:
    rules = ("pushdown",) if pushdown else ()
    return EngineContext(EngineConfig(
        num_workers=2, default_parallelism=PARTITIONS, seed=0,
        optimizer_rules=rules, batch_size=BATCH_SIZE,
        columnar_enabled=columnar))


def _measure_scan(source, columnar: bool, pushdown: bool):
    """Warm run (column pivot + plan memo), then best-of-REPS counts."""
    with _scan_engine(columnar, pushdown) as ctx:
        def job():
            return (ctx.from_source(source, num_partitions=PARTITIONS)
                    .project(["url", "latency"]))

        count = job().count()  # warm: pivots columns, stamps plans
        sample = job().collect()[:5]
        walls = []
        for _ in range(REPS):
            fresh = job()
            started = time.perf_counter()
            repeat = fresh.count()
            walls.append(time.perf_counter() - started)
            assert repeat == count, "re-running the scan changed the count"
        return count, sample, min(walls)


def _measure_spill(codec: str):
    pairs = [(i % 7, f"GET /api/items?page={i % 20}&session=s{i % 10:04d}")
             for i in range(20_000)]
    with EngineContext(EngineConfig(
            num_workers=2, default_parallelism=4, seed=0,
            shuffle_memory_bytes=4096, spill_codec=codec)) as ctx:
        result = ctx.parallelize(pairs, 4).group_by_key(4).collect()
        summary = ctx.metrics.summary()
        assert summary["spills"] > 0, "workload failed to spill"
        return result, summary["spills"], summary["spill_bytes"]


def test_e17_columnar(benchmark):
    """Columnar pruned scans >= 2x row scans; zlib spills >= 2x smaller."""
    source = InMemorySource("wide_events", _wide_rows(), schema=WIDE_SCHEMA)

    configs = {
        "rows/full": (False, False),
        "rows/pruned": (False, True),
        "columnar/pruned": (True, True),
    }
    measured = {name: _measure_scan(source, columnar, pushdown)
                for name, (columnar, pushdown) in configs.items()}

    base_count, base_sample, row_wall = measured["rows/full"]
    for name, (count, sample, _) in measured.items():
        assert count == base_count, f"{name} changed the count"
        assert sample == base_sample, f"{name} changed projected records"

    columnar_wall = measured["columnar/pruned"][2]
    scan_speedup = row_wall / columnar_wall
    assert scan_speedup >= SCAN_SPEEDUP_TARGET, \
        (f"columnar pruned scan speedup {scan_speedup:.2f}x below the "
         f"{SCAN_SPEEDUP_TARGET}x floor")

    plain_result, plain_spills, plain_bytes = _measure_spill("none")
    packed_result, packed_spills, packed_bytes = _measure_spill("zlib")
    assert packed_result == plain_result, "compression changed spill results"
    spill_reduction = plain_bytes / packed_bytes
    assert spill_reduction >= SPILL_REDUCTION_TARGET, \
        (f"spill-byte reduction {spill_reduction:.2f}x below the "
         f"{SPILL_REDUCTION_TARGET}x floor")

    benchmark.pedantic(_measure_scan, args=(source, True, True),
                       rounds=1, iterations=1)

    auto_codec = codec_name(resolve_codec("auto", enabled=True))
    headers = ["workload", "config", "wall ms / bytes", "vs baseline"]
    rows = [("scan+project+count", name, wall * 1000, row_wall / wall)
            for name, (_, _, wall) in measured.items()]
    rows += [
        ("spill-heavy groupBy", f"codec=none ({plain_spills} spills)",
         plain_bytes, 1.0),
        ("spill-heavy groupBy", f"codec=zlib ({packed_spills} spills)",
         packed_bytes, spill_reduction),
    ]
    notes = [
        f"{ROWS} rows x {len(WIDE_SCHEMA.fields)} fields projected to 2, "
        f"{PARTITIONS} partitions, batch_size={BATCH_SIZE}, best of {REPS} "
        "warm runs; counts and projected records asserted identical across "
        "all three configurations",
        "rows/pruned shows projection pushdown alone; columnar/pruned adds "
        "ColumnBatch scans that count by stored length without "
        "materialising row dicts",
        "spill bytes are measured payload lengths on the spill files, not "
        "estimates; the reduction ratio is therefore an on-disk measurement",
        f"codec 'auto' resolves to {auto_codec} on this host (lz4 is used "
        "when importable, zlib otherwise; frames are self-describing so "
        "mixed-codec spill files always read back)",
    ]
    emit_table("E17", "columnar scans and compressed spill frames",
               headers, rows, notes=notes)
    emit_json("E17", "columnar scans and compressed spill frames",
              headers, rows, notes=notes)
