"""Aggregate every machine-readable benchmark into one trajectory table.

Each benchmark harness emits ``results/BENCH_<EXP>.json`` (the standard
shape produced by :func:`bench_utils.emit_json`).  This script folds all of
them into ``results/TRAJECTORY.md``: a summary table of every experiment on
record plus the per-experiment result tables rendered as markdown — the
cross-PR view of how the engine's headline numbers move over time.

Run it after a benchmark sweep::

    PYTHONPATH=src python -m pytest benchmarks/ -q --import-mode=importlib
    python benchmarks/collect_results.py
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
OUTPUT_PATH = os.path.join(RESULTS_DIR, "TRAJECTORY.md")


def load_payloads() -> List[Dict]:
    """Read every BENCH_*.json, ordered by experiment number."""
    payloads = []
    for path in glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["_file"] = os.path.basename(path)
        payloads.append(payload)

    def order(payload: Dict):
        name = payload.get("experiment", "")
        digits = "".join(ch for ch in name if ch.isdigit())
        return (int(digits) if digits else 0, name)

    return sorted(payloads, key=order)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.0f}" if abs(value) >= 1000 else f"{value:.3f}"
    return str(value).replace("|", "\\|")


def markdown_table(headers: List[str], rows: List[Dict]) -> List[str]:
    """Render the emit_json row dicts as a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(header, ""))
                                       for header in headers) + " |")
    return lines


def build_trajectory(payloads: List[Dict]) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Aggregated from every `results/BENCH_*.json` by "
        "`benchmarks/collect_results.py`; regenerate after a benchmark "
        "sweep.",
        "",
        "| experiment | title | rows | source |",
        "| --- | --- | --- | --- |",
    ]
    for payload in payloads:
        lines.append(
            f"| {payload.get('experiment', '?')} "
            f"| {_cell(payload.get('title', ''))} "
            f"| {len(payload.get('rows', []))} "
            f"| `{payload['_file']}` |")
    for payload in payloads:
        lines.extend(["",
                      f"## {payload.get('experiment', '?')} — "
                      f"{payload.get('title', '')}", ""])
        lines.extend(markdown_table(payload.get("headers", []),
                                    payload.get("rows", [])))
        notes = payload.get("notes", [])
        if notes:
            lines.append("")
            lines.extend(f"- {note}" for note in notes)
    lines.append("")
    return "\n".join(lines)


def main() -> str:
    payloads = load_payloads()
    if not payloads:
        raise SystemExit(f"no BENCH_*.json files found under {RESULTS_DIR}")
    text = build_trajectory(payloads)
    with open(OUTPUT_PATH, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {OUTPUT_PATH} ({len(payloads)} experiments)")
    return OUTPUT_PATH


if __name__ == "__main__":
    main()
