"""E11 — the logical-plan optimizer: per-rule wall-clock and shuffle volume.

The engine now compiles every action through logical plan -> rule-based
optimizer -> physical plan.  This experiment A/Bs each rewrite rule on the
pipeline it targets: the same job runs with the optimizer disabled and with
only that rule enabled, measuring wall-clock, shuffle bytes written and the
number of shuffle-map stages.  A full-pipeline row runs every rule at once on
a reduce_by_key-over-filter campaign shape, the paper-relevant hot path.

Besides the plain-text table, the harness emits the machine-readable
``results/BENCH_E11.json`` shape via :func:`bench_utils.emit_json`.
"""

from __future__ import annotations

import time

from repro.config import KNOWN_OPTIMIZER_RULES, EngineConfig
from repro.engine.context import EngineContext

from .bench_utils import emit_json, emit_table

SIZE = 60_000
PARTITIONS = 8


def _fuse_job(engine):
    return (engine.range(SIZE, num_partitions=PARTITIONS)
            .map(lambda x: x * 3)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x - 1)
            .map(lambda x: x % 1001)
            .count())


def _pushdown_job(engine):
    return (engine.range(SIZE, num_partitions=PARTITIONS)
            .repartition(PARTITIONS)
            .filter(lambda x: x % 50 == 0)
            .count())


def _combine_job(engine):
    return (engine.range(SIZE, num_partitions=PARTITIONS)
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: (x % 100, 1))
            .reduce_by_key(lambda a, b: a + b)
            .count())


def _shuffle_elim_job(engine):
    return (engine.range(SIZE, num_partitions=PARTITIONS)
            .map(lambda x: (x % 97, x))
            .reduce_by_key(lambda a, b: a + b, PARTITIONS)
            .group_by_key(PARTITIONS)
            .count())


def _cache_prune_job(engine):
    cached = (engine.range(SIZE, num_partitions=PARTITIONS)
              .map(lambda x: (x % 11, x))
              .reduce_by_key(lambda a, b: a + b)
              .cache())
    cached.count()  # materialise
    return cached.map(lambda kv: kv[1]).sum()


def _full_pipeline_job(engine):
    return (engine.range(SIZE, num_partitions=PARTITIONS)
            .filter(lambda x: x % 3 != 0)
            .map(lambda x: (x % 200, x))
            .reduce_by_key(lambda a, b: a + b, PARTITIONS)
            .group_by_key(PARTITIONS)
            .count())


JOBS = (
    ("fuse_narrow", _fuse_job),
    ("pushdown", _pushdown_job),
    ("map_side_combine", _combine_job),
    ("shuffle_elim", _shuffle_elim_job),
    ("cache_prune", _cache_prune_job),
    ("ALL", _full_pipeline_job),
)


def _run(job, rules):
    config = EngineConfig(num_workers=4, default_parallelism=PARTITIONS,
                          optimizer_rules=rules)
    with EngineContext(config) as engine:
        started = time.perf_counter()
        result = job(engine)
        elapsed = time.perf_counter() - started
        summary = engine.metrics.summary()
    return result, elapsed, summary


def test_e11_plan_optimizer(benchmark):
    """Each optimizer rule off vs on: wall-clock, shuffle bytes, stages."""
    rows = []
    for rule_name, job in JOBS:
        rules_on = (KNOWN_OPTIMIZER_RULES if rule_name == "ALL"
                    else (rule_name,))
        result_off, wall_off, summary_off = _run(job, ())
        result_on, wall_on, summary_on = _run(job, rules_on)
        assert result_on == result_off, f"{rule_name} changed the result"
        rows.append((rule_name,
                     wall_off, wall_on,
                     summary_off["shuffle_bytes"] / 1024.0,
                     summary_on["shuffle_bytes"] / 1024.0,
                     summary_off["num_stages"], summary_on["num_stages"]))

    # benchmarked quantity: the fully optimized campaign hot path
    benchmark.pedantic(_run, args=(_full_pipeline_job, KNOWN_OPTIMIZER_RULES),
                       rounds=3, iterations=1)

    headers = ["rule", "wall off s", "wall on s", "shuffle off KiB",
               "shuffle on KiB", "stages off", "stages on"]
    notes = [
        "each row runs the pipeline the rule targets, identical results asserted",
        "map_side_combine and pushdown cut shuffle bytes by >5x on their jobs",
        "shuffle_elim removes a whole shuffle stage; cache_prune replaces the "
        "subtree below a cached dataset with a direct scan of its blocks",
        "ALL = every rule on the reduce_by_key-over-filter campaign hot path",
    ]
    emit_table("E11", "logical-plan optimizer rule A/B", headers, rows,
               notes=notes)
    emit_json("E11", "logical-plan optimizer rule A/B", headers, rows,
              notes=notes)

    by_rule = {row[0]: row for row in rows}
    # the acceptance bar: combining measurably shrinks the shuffle
    assert by_rule["map_side_combine"][4] < by_rule["map_side_combine"][3] / 5
    assert by_rule["pushdown"][4] < by_rule["pushdown"][3] / 5
    assert by_rule["shuffle_elim"][6] < by_rule["shuffle_elim"][5]
    assert by_rule["ALL"][4] < by_rule["ALL"][3]
