"""A1–A3 — ablations of design choices called out in DESIGN.md.

Three internal design decisions materially affect the numbers every other
experiment reports; each ablation measures the system with and without the
mechanism so the choice is justified by data rather than by assertion:

* **A1 — map-side combining.**  ``reduce_by_key`` pre-aggregates on the map
  side (``combine_by_key``); the ablation re-expresses the same aggregation as
  ``group_by_key`` + reduce, which ships every record through the shuffle.
* **A2 — dataset caching.**  Iterative analytics (k-means) cache their feature
  vectors; the ablation recomputes the lineage on every iteration.
* **A3 — compiler-inserted protection.**  The anonymisation step is inserted
  by the compiler from the policy; the ablation runs the same campaign on the
  open-data policy, quantifying what the protection costs end to end.
"""

from __future__ import annotations

import time

from repro.config import EngineConfig
from repro.core.campaign import CampaignRunner
from repro.core.compiler import CampaignCompiler
from repro.engine.context import EngineContext

from .bench_utils import churn_spec, emit_table


def test_a1_map_side_combine_ablation(benchmark):
    """Shuffle volume and time with vs. without map-side combining."""
    size, partitions = 60_000, 8

    def with_combine():
        with EngineContext(EngineConfig(num_workers=2,
                                        default_parallelism=partitions)) as engine:
            (engine.range(size, num_partitions=partitions)
             .map(lambda value: (value % 100, 1))
             .reduce_by_key(lambda left, right: left + right).collect())
            return engine.metrics.summary()

    def without_combine():
        with EngineContext(EngineConfig(num_workers=2,
                                        default_parallelism=partitions)) as engine:
            (engine.range(size, num_partitions=partitions)
             .map(lambda value: (value % 100, 1))
             .group_by_key()
             .map_values(sum).collect())
            return engine.metrics.summary()

    started = time.perf_counter()
    combined = with_combine()
    combined_time = time.perf_counter() - started
    started = time.perf_counter()
    grouped = without_combine()
    grouped_time = time.perf_counter() - started

    rows = [
        ("reduce_by_key (map-side combine)", combined_time,
         combined["shuffle_bytes"] / 1024.0, combined["records_written"]),
        ("group_by_key + reduce (ablation)", grouped_time,
         grouped["shuffle_bytes"] / 1024.0, grouped["records_written"]),
        ("ratio (ablation / combine)", grouped_time / combined_time,
         grouped["shuffle_bytes"] / max(1, combined["shuffle_bytes"]),
         grouped["records_written"] / max(1, combined["records_written"])),
    ]
    emit_table("A1", "map-side combining ablation (60k records, 100 keys)",
               ["variant", "wall s", "shuffle KiB", "records through shuffle"],
               rows,
               notes=["without map-side combining every input record crosses the "
                      "shuffle; with it only one partial per key and partition does"])
    assert grouped["shuffle_bytes"] > 5 * combined["shuffle_bytes"]

    benchmark.pedantic(with_combine, rounds=3, iterations=1)


def test_a2_cache_ablation(benchmark):
    """Iterative k-means with and without caching the feature vectors."""
    from repro.data.generators import ChurnDataGenerator
    from repro.data.sources import GeneratorSource
    from repro.services.analytics.clustering import KMeansService
    from repro.services.base import ServiceContext

    def run_kmeans(cache_enabled: bool):
        config = EngineConfig(num_workers=2, default_parallelism=4,
                              memory_budget_bytes=(256 * 1024 * 1024
                                                   if cache_enabled else 0))
        with EngineContext(config) as engine:
            source = GeneratorSource(ChurnDataGenerator(seed=3), 6000)
            dataset = engine.from_source(source, 4)
            service = KMeansService(features=["monthly_charges", "tenure_months",
                                              "data_usage_gb"],
                                    k=4, max_iterations=6, seed=1)
            started = time.perf_counter()
            result = service.execute(ServiceContext(engine=engine, dataset=dataset))
            elapsed = time.perf_counter() - started
            return elapsed, result.metrics, engine.block_store.stats()

    cached_time, cached_metrics, cached_store = run_kmeans(True)
    uncached_time, uncached_metrics, uncached_store = run_kmeans(False)
    rows = [
        ("vectors cached", cached_time, cached_store["hits"],
         cached_metrics["iterations"], cached_metrics["inertia"]),
        ("cache budget 0 (ablation)", uncached_time, uncached_store["hits"],
         uncached_metrics["iterations"], uncached_metrics["inertia"]),
    ]
    emit_table("A2", "cache ablation on iterative k-means (6k records, 6 iterations)",
               ["variant", "wall s", "cache hits", "iterations", "inertia"],
               rows,
               notes=["the clustering result is identical; only the cost of "
                      "recomputing the feature extraction per iteration changes",
                      "with a zero cache budget every cached block is evicted "
                      "immediately, so each iteration regenerates the source data"])
    assert cached_metrics["inertia"] == uncached_metrics["inertia"]
    assert cached_store["hits"] > uncached_store["hits"]

    benchmark.pedantic(lambda: run_kmeans(True), rounds=2, iterations=1)


def test_a3_protection_cost_ablation(benchmark):
    """End-to-end cost of the compiler-inserted protection step."""
    compiler = CampaignCompiler()
    runner = CampaignRunner(compiler.catalog)

    protected_spec = churn_spec(num_records=4000, model="naive_bayes",
                                policy="gdpr_baseline")
    unprotected_spec = churn_spec(num_records=4000, model="naive_bayes",
                                  policy="open_data")
    protected = runner.run(compiler.compile(protected_spec), option_label="gdpr")
    unprotected = runner.run(compiler.compile(unprotected_spec), option_label="open")

    rows = [
        ("open_data (no protection)", unprotected.indicator("execution_time_s"),
         unprotected.indicator("accuracy"), 0.0, 0.0,
         unprotected.indicator("policy_violations")),
        ("gdpr_baseline (protect step inserted)",
         protected.indicator("execution_time_s"),
         protected.indicator("accuracy"),
         protected.indicator("achieved_k"),
         protected.indicator("information_loss"),
         protected.indicator("policy_violations")),
    ]
    emit_table("A3", "cost of compiler-inserted protection (churn, naive Bayes)",
               ["policy", "wall s", "accuracy", "achieved k", "info loss",
                "violations"],
               rows,
               notes=["the protected campaign pays the anonymisation time and a "
                      "small accuracy cost, and in exchange reports k>=5 with zero "
                      "policy violations; the unprotected one is only legal because "
                      "the open-data policy applies to it"])
    assert protected.indicator("achieved_k") >= 5
    assert protected.indicator("policy_violations") == 0

    campaign = compiler.compile(protected_spec)
    benchmark.pedantic(lambda: runner.run(campaign), rounds=2, iterations=1)
