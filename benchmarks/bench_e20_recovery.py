"""E20 — durable recovery: resume-time vs cold re-run, checkpoint pricing.

PR 10 made the *driver* expendable: a context configured with
``checkpoint_dir`` journals every settled shuffle's durable span catalog
(and any ``Dataset.checkpoint()`` materialisation) with atomic
tmp+rename+fsync writes, and a context started with ``recover_from``
CRC-revalidates and re-adopts that state instead of recomputing it.
This experiment prices both halves of that bargain: what journaling and
checkpoint writes cost a fault-free run, and what the journal buys back
when a run is resumed.

Assertions are hardware-independent where possible: the resumed run must
return results *identical* to the cold run, report ``stages_recovered >
0``, and — the one wall-clock claim this PR makes — finish measurably
faster than the cold run it resumes, because the adopted shuffle output
lets it skip the CPU-burning map stage entirely.  Overhead ratios for
journaling and checkpoint writes are recorded, never asserted (fsync
cost is host-dependent).

Emits ``results/BENCH_E20.json`` via :func:`bench_utils.emit_json`.
"""

from __future__ import annotations

import shutil
import tempfile
import time

import pytest

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext

from .bench_utils import emit_json, emit_table

if not serializer.supports_closures():  # pragma: no cover - cloudpickle ships
    pytest.skip("the recovery benchmark needs cloudpickle for the process "
                "backend", allow_module_level=True)

ROWS = 40_000
BURN_ITERATIONS = 120
MAPS = 8
REDUCERS = 4
WORKERS = 2
REPS = 3
SEED = 16


def _burn(pair):
    key, value = pair
    acc = value
    for _ in range(BURN_ITERATIONS):
        acc = (acc * 1_103_515_245 + 12_345) % 2_147_483_647
    return key, acc


def _add(a, b):
    return a + b


def _pairs():
    return [(i % 64, i) for i in range(ROWS)]


def _run(pairs, root=None, recover=False, checkpoint=False):
    """One fresh context over the workload; returns (result, wall, summary)."""
    overrides = {}
    if root is not None:
        overrides["checkpoint_dir"] = root
    if recover:
        overrides["recover_from"] = root
    config = EngineConfig(num_workers=WORKERS, default_parallelism=MAPS,
                          seed=SEED, executor_backend="process", **overrides)
    started = time.perf_counter()
    with EngineContext(config) as ctx:
        ds = (ctx.parallelize(pairs, MAPS)
              .map(_burn)
              .reduce_by_key(_add, REDUCERS))
        if checkpoint:
            ds = ds.checkpoint()
        result = sorted(ds.collect())
        summary = ctx.metrics.summary()
    return result, time.perf_counter() - started, summary


def _median(walls):
    return sorted(walls)[len(walls) // 2]


def test_e20_recovery(benchmark):
    """Journal resume: identical results, recovered stages, faster restart."""
    pairs = _pairs()

    baseline_walls, cold_walls, resume_walls, ckpt_walls = [], [], [], []
    baseline_result = cold_summary = resume_summary = ckpt_summary = None
    for _ in range(REPS):
        result, wall, _ = _run(pairs)
        baseline_result = result
        baseline_walls.append(wall)

        root = tempfile.mkdtemp(prefix="bench-e20-")
        try:
            cold_result, wall, cold_summary = _run(pairs, root=root)
            cold_walls.append(wall)
            assert cold_result == baseline_result, \
                "journaling changed the results"
            assert cold_summary["journal_bytes"] > 0, \
                "the cold run journaled nothing — resume would measure nothing"

            resumed, wall, resume_summary = _run(pairs, root=root,
                                                 recover=True)
            resume_walls.append(wall)
            assert resumed == baseline_result, \
                "the resumed run changed the results"
            assert resume_summary["stages_recovered"] > 0, \
                "the resumed run adopted nothing from the journal"
        finally:
            shutil.rmtree(root, ignore_errors=True)

        root = tempfile.mkdtemp(prefix="bench-e20-ckpt-")
        try:
            ckpt_result, wall, ckpt_summary = _run(pairs, root=root,
                                                   checkpoint=True)
            ckpt_walls.append(wall)
            assert ckpt_result == baseline_result, \
                "checkpointing changed the results"
            assert ckpt_summary["checkpoints_written"] > 0
        finally:
            shutil.rmtree(root, ignore_errors=True)

    baseline_wall = _median(baseline_walls)
    cold_wall = _median(cold_walls)
    resume_wall = _median(resume_walls)
    ckpt_wall = _median(ckpt_walls)

    # the PR's one wall-clock claim: adopting the journaled shuffle output
    # skips the CPU-burning map stage, so a resume beats the cold run it
    # resumes even with pool spawn and CRC revalidation included
    assert resume_wall < cold_wall, \
        (f"resume ({resume_wall * 1000:.0f} ms) was not faster than the "
         f"cold run it resumed ({cold_wall * 1000:.0f} ms)")

    benchmark.pedantic(_run, args=(pairs,), rounds=1, iterations=1)

    headers = ["configuration", "wall ms", "vs baseline",
               "journal bytes", "stages recovered", "checkpoints written"]
    rows = [
        ("no journal baseline", baseline_wall * 1000, 1.0, 0, 0, 0),
        ("cold run + journal", cold_wall * 1000, cold_wall / baseline_wall,
         cold_summary["journal_bytes"], 0, 0),
        ("resume from journal", resume_wall * 1000,
         resume_wall / baseline_wall, resume_summary["journal_bytes"],
         resume_summary["stages_recovered"], 0),
        ("cold run + checkpoint", ckpt_wall * 1000,
         ckpt_wall / baseline_wall, ckpt_summary["journal_bytes"], 0,
         ckpt_summary["checkpoints_written"]),
    ]
    notes = [
        f"{ROWS} rows x {BURN_ITERATIONS} burn iterations, {MAPS} map / "
        f"{REDUCERS} reduce partitions, {WORKERS} process workers, seed "
        f"{SEED}; median of {REPS} fresh contexts per configuration, pool "
        "spawn and fsyncs included",
        "every configuration returned identical results and the resume "
        "reported stages_recovered > 0 (asserted); resume wall-clock below "
        "the cold run is asserted — the adopted shuffle output skips the "
        "CPU-burning map stage — while journaling/checkpoint overhead "
        "ratios are recorded, not asserted (fsync cost is host-dependent)",
        "the journal is a hint, never a correctness dependency: every "
        "adopted span is CRC-revalidated during resume, inside the "
        "measured wall-clock",
    ]
    emit_table("E20", "durable recovery: journal resume vs cold re-run",
               headers, rows, notes=notes)
    emit_json("E20", "durable recovery: journal resume vs cold re-run",
              headers, rows, notes=notes)
