"""E5 — regulatory constraints change the campaign, measurably.

Claim exercised (paper §1/§2): the "regulatory barrier" and the privacy
objectives of the declarative model.  The experiment runs the hospital
readmission campaign under the strict health policy while sweeping the
declared k-anonymity level, and regenerates the privacy/utility table: the
achieved k, the information loss, the surviving records and the analytics
quality at each level, plus the unprotected (open-data) reference point.
"""

from __future__ import annotations

from repro.core.campaign import CampaignRunner
from repro.core.compiler import CampaignCompiler

from .bench_utils import emit_table

K_LEVELS = (2, 10, 50, 200)


def _patient_spec(k_anonymity: int, policy: str = "health_strict") -> dict:
    spec = {
        "name": f"bench-readmission-k{k_anonymity}",
        "purpose": "research",
        "policy": policy,
        "source": {"scenario": "patients", "num_records": 4000},
        "deployment": {"num_partitions": 4, "num_workers": 2},
        "goals": [{
            "id": "readmit",
            "task": "classification",
            "params": {"label": "readmitted",
                       "features": ["age", "length_of_stay", "treatment_cost"],
                       "categorical_features": ["diagnosis"]},
            "optimize_for": "cost",
            "objectives": [{"indicator": "accuracy", "target": 0.6, "hard": False},
                           {"indicator": "policy_violations", "target": 0,
                            "comparator": "<="}],
        }],
    }
    if k_anonymity > 0:
        spec["privacy"] = {"k_anonymity": k_anonymity, "mask_identifiers": True}
    return spec


def test_e5_privacy_utility_tradeoff(benchmark):
    """Privacy level vs. analytics utility on the health-data campaign."""
    compiler = CampaignCompiler()
    runner = CampaignRunner(compiler.catalog)

    rows = []
    # unprotected reference point (only legal on the open-data policy)
    reference = runner.run(compiler.compile(_patient_spec(0, policy="open_data")),
                           option_label="no-protection")
    rows.append(("none (open_data)", 0, 0.0, 4000,
                 reference.indicator("accuracy"),
                 reference.indicator("policy_violations")))

    accuracies = {}
    for k in K_LEVELS:
        run = runner.run(compiler.compile(_patient_spec(k)), option_label=f"k={k}")
        accuracies[k] = run.indicator("accuracy")
        rows.append((f"k>={k} (health_strict)",
                     run.indicator("achieved_k"),
                     run.indicator("information_loss"),
                     run.indicator("records_after"),
                     run.indicator("accuracy"),
                     run.indicator("policy_violations")))

    emit_table("E5", "privacy / utility trade-off on hospital readmissions",
               ["declared protection", "achieved k", "info loss", "records kept",
                "accuracy", "violations"],
               rows,
               notes=["the health policy enforces a minimum of k=10, so declaring "
                      "k=2 is silently strengthened",
                      "information loss grows with k while accuracy degrades only "
                      "moderately: generalised ages keep most of their predictive "
                      "power, which is exactly the argument for anonymise-then-analyse"])

    assert all(run_violations == 0 for *_, run_violations in rows[1:])
    # utility never improves as protection grows
    assert accuracies[K_LEVELS[-1]] <= reference.indicator("accuracy") + 0.05

    # benchmarked quantity: one protected campaign execution (k = policy minimum)
    campaign = compiler.compile(_patient_spec(10))
    benchmark.pedantic(lambda: runner.run(campaign), rounds=3, iterations=1)
