"""Ingestion and preparation services."""

from __future__ import annotations

import pytest

from repro.data.schemas import CHURN_SCHEMA
from repro.data.sources import InMemorySource, write_csv
from repro.errors import ServiceConfigurationError
from repro.services.base import ServiceContext
from repro.services.ingestion import (CSVIngestionService, GeneratorIngestionService,
                                      InMemoryIngestionService, SourceIngestionService)
from repro.services.preparation import (CategoricalEncodingService,
                                        DeduplicationService, FieldProjectionService,
                                        FilterService, MissingValueImputationService,
                                        NormalizationService, TrainTestSplitService)


class TestIngestionServices:
    def test_generator_ingestion(self, engine):
        result = GeneratorIngestionService(scenario="churn", num_records=100) \
            .execute(ServiceContext(engine=engine))
        assert result.dataset.count() == 100
        assert result.schema is CHURN_SCHEMA
        assert result.metrics["ingested_records"] == 100

    def test_generator_ingestion_unknown_scenario(self, engine):
        from repro.errors import DataError
        service = GeneratorIngestionService(scenario="nope", num_records=10)
        with pytest.raises(DataError):
            service.execute(ServiceContext(engine=engine))

    def test_source_ingestion(self, engine):
        source = InMemorySource("mem", [{"v": i} for i in range(20)])
        result = SourceIngestionService(source=source, num_partitions=2) \
            .execute(ServiceContext(engine=engine))
        assert result.dataset.count() == 20

    def test_source_ingestion_rejects_non_source(self, engine):
        service = SourceIngestionService(source="not-a-source")
        with pytest.raises(ServiceConfigurationError):
            service.execute(ServiceContext(engine=engine))

    def test_records_ingestion(self, engine):
        records = [{"v": 1}, {"v": 2}]
        result = InMemoryIngestionService(records=records) \
            .execute(ServiceContext(engine=engine))
        assert result.dataset.collect() == records

    def test_records_ingestion_with_schema_object(self, engine):
        result = InMemoryIngestionService(records=[{"v": 1}], schema=None) \
            .execute(ServiceContext(engine=engine))
        assert result.schema is None

    def test_csv_ingestion(self, engine, tmp_path, churn_records):
        path = str(tmp_path / "churn.csv")
        write_csv(path, churn_records[:50], CHURN_SCHEMA)
        result = CSVIngestionService(path=path, scenario="churn") \
            .execute(ServiceContext(engine=engine))
        assert result.dataset.count() == 50
        assert result.schema is CHURN_SCHEMA


@pytest.fixture()
def churn_context(engine, churn_records):
    """A service context holding a small churn dataset."""
    dataset = engine.parallelize(churn_records[:400], 4)
    return ServiceContext(engine=engine, dataset=dataset, schema=CHURN_SCHEMA)


class TestProjectionAndFilter:
    def test_projection_keeps_only_requested_fields(self, churn_context):
        result = FieldProjectionService(fields=["age", "churned"]).execute(churn_context)
        record = result.dataset.first()
        assert set(record) == {"age", "churned"}
        assert result.schema.field_names == ["age", "churned"]

    def test_filter_equality(self, churn_context):
        result = FilterService(field="contract_type", operator="==",
                               value="monthly").execute(churn_context)
        assert all(r["contract_type"] == "monthly" for r in result.dataset.take(50))

    def test_filter_numeric_comparison(self, churn_context):
        result = FilterService(field="age", operator=">=", value=60).execute(churn_context)
        collected = result.dataset.collect()
        assert collected and all(r["age"] >= 60 for r in collected)

    def test_filter_in_operator(self, churn_context):
        result = FilterService(field="region", operator="in",
                               value=["north", "south"]).execute(churn_context)
        assert all(r["region"] in ("north", "south") for r in result.dataset.take(50))

    def test_filter_unknown_operator(self, churn_context):
        service = FilterService(field="age", operator="~=", value=1)
        with pytest.raises(ServiceConfigurationError):
            service.execute(churn_context)


class TestImputation:
    def test_mean_imputation_fills_missing(self, engine):
        records = [{"x": 10.0}, {"x": None}, {"x": 20.0}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        result = MissingValueImputationService(fields=["x"]).execute(context)
        values = [r["x"] for r in result.dataset.collect()]
        assert values == [10.0, 15.0, 20.0]

    def test_mode_imputation_for_strings(self, engine):
        records = [{"c": "a"}, {"c": "a"}, {"c": None}, {"c": "b"}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        result = MissingValueImputationService(fields=["c"], strategy="mode") \
            .execute(context)
        assert [r["c"] for r in result.dataset.collect()] == ["a", "a", "a", "b"]

    def test_constant_imputation(self, engine):
        records = [{"x": None}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        result = MissingValueImputationService(fields=["x"], strategy="constant",
                                               fill_value=-1).execute(context)
        assert result.dataset.first()["x"] == -1

    def test_unknown_strategy_rejected(self, engine):
        records = [{"x": 1.0}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        with pytest.raises(ServiceConfigurationError):
            MissingValueImputationService(fields=["x"], strategy="wat").execute(context)


class TestNormalizationAndEncoding:
    def test_zscore_normalisation_centres_values(self, churn_context):
        result = NormalizationService(fields=["monthly_charges"]).execute(churn_context)
        stats = result.dataset.map(lambda r: r["monthly_charges"]).stats()
        assert abs(stats["mean"]) < 1e-6
        assert stats["stdev"] == pytest.approx(1.0, abs=0.05)

    def test_minmax_normalisation_bounds(self, churn_context):
        result = NormalizationService(fields=["age"], method="minmax") \
            .execute(churn_context)
        stats = result.dataset.map(lambda r: r["age"]).stats()
        assert stats["min"] == pytest.approx(0.0)
        assert stats["max"] == pytest.approx(1.0)

    def test_unknown_normalisation_method(self, churn_context):
        with pytest.raises(ServiceConfigurationError):
            NormalizationService(fields=["age"], method="log").execute(churn_context)

    def test_onehot_encoding_creates_indicator_columns(self, churn_context):
        result = CategoricalEncodingService(fields=["contract_type"]).execute(churn_context)
        record = result.dataset.first()
        assert "contract_type" not in record
        indicator_keys = [k for k in record if k.startswith("contract_type=")]
        assert len(indicator_keys) == 3
        assert sum(record[k] for k in indicator_keys) == 1.0

    def test_ordinal_encoding(self, churn_context):
        result = CategoricalEncodingService(fields=["region"], method="ordinal") \
            .execute(churn_context)
        record = result.dataset.first()
        assert "region_code" in record
        assert record["region_code"] >= 0


class TestSplitAndDedup:
    def test_split_tags_every_record(self, churn_context):
        result = TrainTestSplitService(test_fraction=0.25).execute(churn_context)
        tags = result.dataset.map(lambda r: r["__split__"]).count_by_value()
        assert set(tags) == {"train", "test"}
        fraction = tags["test"] / (tags["test"] + tags["train"])
        assert 0.15 < fraction < 0.35

    def test_split_is_deterministic(self, churn_context):
        first = TrainTestSplitService(seed=5).execute(churn_context).dataset.collect()
        second = TrainTestSplitService(seed=5).execute(churn_context).dataset.collect()
        assert first == second

    def test_split_invalid_fraction(self, churn_context):
        with pytest.raises(ServiceConfigurationError):
            TrainTestSplitService(test_fraction=1.5).execute(churn_context)

    def test_dedup_removes_exact_duplicates(self, engine):
        records = [{"a": 1, "b": "x"}, {"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = DeduplicationService().execute(context)
        assert result.metrics["duplicates_removed"] == 1
        assert result.dataset.count() == 2

    def test_dedup_by_subset_of_fields(self, engine):
        records = [{"id": 1, "v": "a"}, {"id": 1, "v": "b"}, {"id": 2, "v": "c"}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = DeduplicationService(fields=["id"]).execute(context)
        assert result.dataset.count() == 2

    def test_dedup_handles_list_values(self, engine):
        records = [{"basket": ["a", "b"]}, {"basket": ["a", "b"]}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        assert DeduplicationService().execute(context).dataset.count() == 1
