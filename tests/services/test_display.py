"""Display services: reports, tables, chart data, dashboards."""

from __future__ import annotations

import pytest

from repro.errors import ServiceConfigurationError
from repro.services.base import ServiceContext, ServiceResult
from repro.services.display import (ChartDataService, DashboardService, ReportService,
                                    TableExportService)


@pytest.fixture()
def upstream_results(engine):
    """Fake upstream step results feeding the display services."""
    return {
        "analytics-churn": ServiceResult(metrics={"accuracy": 0.72, "f1": 0.61},
                                         artifacts={"model_type": "tree"}),
        "protect": ServiceResult(metrics={"achieved_k": 5.0}),
    }


class TestReportService:
    def test_report_contains_title_and_metrics(self, engine, upstream_results):
        context = ServiceContext(engine=engine, upstream=upstream_results)
        result = ReportService(title="Churn campaign").execute(context)
        report = result.artifacts["report"]
        assert report.startswith("Churn campaign")
        assert "accuracy: 0.7200" in report
        assert "[analytics-churn]" in report
        assert "[protect]" in report

    def test_report_includes_artifacts_when_asked(self, engine, upstream_results):
        context = ServiceContext(engine=engine, upstream=upstream_results)
        result = ReportService(include_artifacts=True).execute(context)
        assert "model_type" in result.artifacts["report"]

    def test_report_with_no_upstream(self, engine):
        result = ReportService().execute(ServiceContext(engine=engine))
        assert result.metrics["report_lines"] >= 2


class TestTableExportService:
    def test_exports_rows_and_columns(self, engine):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        result = TableExportService(max_rows=10).execute(context)
        assert result.artifacts["rows"] == records
        assert result.artifacts["columns"] == ["a", "b"]

    def test_respects_max_rows(self, engine):
        records = [{"a": i} for i in range(100)]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = TableExportService(max_rows=7).execute(context)
        assert result.metrics["exported_rows"] == 7

    def test_invalid_max_rows(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.parallelize([{"a": 1}], 1))
        with pytest.raises(ServiceConfigurationError):
            TableExportService(max_rows=0).execute(context)


class TestChartDataService:
    def test_histogram_series(self, engine):
        records = [{"v": float(i)} for i in range(100)]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = ChartDataService(value_field="v", buckets=4).execute(context)
        assert len(result.artifacts["counts"]) == 4
        assert sum(result.artifacts["counts"]) == 100
        assert len(result.artifacts["edges"]) == 5

    def test_plain_numeric_records_supported(self, engine):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize([1.0, 2.0, 3.0], 1))
        result = ChartDataService(value_field="ignored", buckets=2).execute(context)
        assert sum(result.artifacts["counts"]) == 3


class TestDashboardService:
    def test_collects_all_metrics_by_default(self, engine, upstream_results):
        context = ServiceContext(engine=engine, upstream=upstream_results)
        result = DashboardService().execute(context)
        dashboard = result.artifacts["dashboard"]
        assert dashboard["analytics-churn"]["accuracy"] == 0.72
        assert result.metrics["panels"] == 2

    def test_highlight_filter(self, engine, upstream_results):
        context = ServiceContext(engine=engine, upstream=upstream_results)
        result = DashboardService(highlight_metrics=["accuracy"]).execute(context)
        dashboard = result.artifacts["dashboard"]
        assert list(dashboard) == ["analytics-churn"]
        assert list(dashboard["analytics-churn"]) == ["accuracy"]
