"""Service base machinery: metadata, parameter validation, vectorisation."""

from __future__ import annotations

import pytest

from repro.errors import ServiceConfigurationError
from repro.services.base import (AREA_ANALYTICS, Service, ServiceContext,
                                 ServiceMetadata, ServiceParameter, ServiceResult,
                                 records_to_vectors)


class EchoService(Service):
    """Tiny test service echoing its parameters."""

    metadata = ServiceMetadata(
        name="echo", area=AREA_ANALYTICS,
        capabilities=("task:test",),
        parameters=(
            ServiceParameter("required_field", "str", required=True),
            ServiceParameter("count", "int", default=3),
            ServiceParameter("ratio", "float", default=0.5),
            ServiceParameter("flag", "bool", default=False),
            ServiceParameter("items", "list", default=None),
        ))

    def execute(self, context: ServiceContext) -> ServiceResult:
        return ServiceResult(metrics={"count": float(self.params["count"])})


class TestParameterValidation:
    def test_defaults_applied(self):
        service = EchoService(required_field="x")
        assert service.params["count"] == 3
        assert service.params["ratio"] == 0.5

    def test_missing_required_rejected(self):
        with pytest.raises(ServiceConfigurationError):
            EchoService()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ServiceConfigurationError):
            EchoService(required_field="x", bogus=1)

    def test_type_coercion(self):
        service = EchoService(required_field="x", count="7", ratio="0.25",
                              flag="true", items="a, b ,c")
        assert service.params["count"] == 7
        assert service.params["ratio"] == 0.25
        assert service.params["flag"] is True
        assert service.params["items"] == ["a", "b", "c"]

    def test_list_passthrough(self):
        assert EchoService(required_field="x", items=[1, 2]).params["items"] == [1, 2]

    def test_bad_int_coercion_raises(self):
        with pytest.raises(ServiceConfigurationError):
            EchoService(required_field="x", count="not-a-number")

    def test_service_without_metadata_rejected(self):
        class Broken(Service):
            metadata = None
        with pytest.raises(ServiceConfigurationError):
            Broken()

    def test_name_and_area_properties(self):
        service = EchoService(required_field="x")
        assert service.name == "echo"
        assert service.area == AREA_ANALYTICS
        assert "echo" in repr(service)


class TestServiceMetadata:
    def test_has_capability(self):
        assert EchoService.metadata.has_capability("task:test")
        assert not EchoService.metadata.has_capability("task:other")

    def test_parameter_lookup(self):
        assert EchoService.metadata.parameter("count").default == 3
        assert EchoService.metadata.parameter("missing") is None


class TestServiceContext:
    def test_require_dataset_raises_without_dataset(self, engine):
        context = ServiceContext(engine=engine)
        with pytest.raises(ServiceConfigurationError):
            context.require_dataset()

    def test_require_dataset_returns_dataset(self, engine):
        ds = engine.parallelize([1], 1)
        assert ServiceContext(engine=engine, dataset=ds).require_dataset() is ds


class TestServiceResult:
    def test_merged_metrics_with_prefix(self):
        result = ServiceResult(metrics={"a": 1.0})
        assert result.merged_metrics("step") == {"step.a": 1.0}
        assert result.merged_metrics() == {"a": 1.0}


class TestFeatureToFloat:
    def test_plain_numbers(self):
        from repro.services.base import feature_to_float
        assert feature_to_float(3) == 3.0
        assert feature_to_float(2.5) == 2.5
        assert feature_to_float(True) == 1.0
        assert feature_to_float(None) == 0.0

    def test_numeric_strings(self):
        from repro.services.base import feature_to_float
        assert feature_to_float("42") == 42.0

    def test_anonymised_range_maps_to_midpoint(self):
        from repro.services.base import feature_to_float
        assert feature_to_float("[60-80)") == 70.0
        assert feature_to_float("[0-5)") == 2.5

    def test_suppressed_and_garbage_values(self):
        from repro.services.base import feature_to_float
        assert feature_to_float("*") == 0.0
        assert feature_to_float("north") == 0.0
        assert feature_to_float("[a-b)") == 0.0


class TestRecordsToVectors:
    def test_numeric_features(self):
        records = [{"x": 1, "y": 2.5}, {"x": 3, "y": None}]
        vectors, columns = records_to_vectors(records, ["x", "y"])
        assert vectors == [[1.0, 2.5], [3.0, 0.0]]
        assert columns == ["x", "y"]

    def test_one_hot_encoding_of_categoricals(self):
        records = [{"x": 1, "c": "a"}, {"x": 2, "c": "b"}, {"x": 3, "c": "a"}]
        vectors, columns = records_to_vectors(records, ["x"], ["c"])
        assert columns == ["x", "c=a", "c=b"]
        assert vectors[0] == [1.0, 1.0, 0.0]
        assert vectors[1] == [2.0, 0.0, 1.0]

    def test_unseen_category_encodes_to_zeros(self):
        records = [{"c": "a"}, {"c": None}]
        vectors, columns = records_to_vectors(records, [], ["c"])
        assert vectors[1] == [0.0]

    def test_empty_records(self):
        vectors, columns = records_to_vectors([], ["x"], ["c"])
        assert vectors == []
        assert columns == ["x"]
