"""Clustering, association-rule mining, anomaly detection and descriptive services."""

from __future__ import annotations

import pytest

from repro.errors import ServiceConfigurationError, ServiceExecutionError
from repro.services.base import ServiceContext
from repro.services.analytics.anomaly import IQRAnomalyService, ZScoreAnomalyService
from repro.services.analytics.association import AssociationRulesService
from repro.services.analytics.clustering import KMeansService
from repro.services.analytics.descriptive import (DescriptiveStatsService,
                                                  GroupAggregationService, TopKService)


class TestKMeans:
    @pytest.fixture()
    def blob_context(self, engine):
        import random
        rng = random.Random(1)
        records = []
        for center in ((0.0, 0.0), (10.0, 10.0), (0.0, 10.0)):
            records.extend({"x": rng.gauss(center[0], 0.5), "y": rng.gauss(center[1], 0.5)}
                           for _ in range(60))
        rng.shuffle(records)
        return ServiceContext(engine=engine, dataset=engine.parallelize(records, 3))

    def test_recovers_well_separated_blobs(self, blob_context):
        result = KMeansService(features=["x", "y"], k=3, max_iterations=10, seed=2) \
            .execute(blob_context)
        sizes = sorted(result.artifacts["cluster_sizes"])
        assert sizes == [60, 60, 60]
        assert result.metrics["inertia"] < 500

    def test_more_clusters_lower_inertia(self, blob_context):
        inertia_2 = KMeansService(features=["x", "y"], k=2, seed=3) \
            .execute(blob_context).metrics["inertia"]
        inertia_4 = KMeansService(features=["x", "y"], k=4, seed=3) \
            .execute(blob_context).metrics["inertia"]
        assert inertia_4 < inertia_2

    def test_output_records_carry_cluster_assignment(self, blob_context):
        result = KMeansService(features=["x", "y"], k=3, seed=1).execute(blob_context)
        record = result.dataset.first()
        assert "cluster" in record
        assert 0 <= record["cluster"] < 3

    def test_k_larger_than_data_raises(self, engine):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize([{"x": 1.0}], 1))
        with pytest.raises(ServiceExecutionError):
            KMeansService(features=["x"], k=5).execute(context)

    def test_empty_dataset_raises(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        with pytest.raises(ServiceExecutionError):
            KMeansService(features=["x"], k=2).execute(context)

    def test_invalid_k_rejected(self, engine):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize([{"x": 1.0}], 1))
        with pytest.raises(ServiceConfigurationError):
            KMeansService(features=["x"], k=0).execute(context)

    def test_iterations_bounded_by_max(self, blob_context):
        result = KMeansService(features=["x", "y"], k=3, max_iterations=2, seed=1) \
            .execute(blob_context)
        assert result.metrics["iterations"] <= 2


class TestAssociationRules:
    @pytest.fixture()
    def basket_context(self, engine, retail_records):
        return ServiceContext(engine=engine, dataset=engine.parallelize(retail_records, 4))

    def test_finds_embedded_rules(self, basket_context):
        result = AssociationRulesService(min_support=0.05, min_confidence=0.3) \
            .execute(basket_context)
        rules = result.artifacts["rules"]
        assert result.metrics["num_rules"] >= 3
        pairs = {(tuple(rule["antecedent"]), tuple(rule["consequent"])) for rule in rules}
        assert (("pasta",), ("tomato_sauce",)) in pairs

    def test_rule_measures_are_consistent(self, basket_context):
        result = AssociationRulesService(min_support=0.05, min_confidence=0.3) \
            .execute(basket_context)
        for rule in result.artifacts["rules"]:
            assert 0.0 < rule["support"] <= 1.0
            assert 0.3 <= rule["confidence"] <= 1.0
            assert rule["lift"] > 0.0
            assert rule["confidence"] >= rule["support"]

    def test_stricter_support_yields_fewer_itemsets(self, basket_context):
        loose = AssociationRulesService(min_support=0.02, min_confidence=0.3) \
            .execute(basket_context).metrics["num_frequent_itemsets"]
        strict = AssociationRulesService(min_support=0.2, min_confidence=0.3) \
            .execute(basket_context).metrics["num_frequent_itemsets"]
        assert strict < loose

    def test_itemset_size_cap_respected(self, basket_context):
        result = AssociationRulesService(min_support=0.02, min_confidence=0.2,
                                         max_itemset_size=2).execute(basket_context)
        assert all(len(itemset) <= 2
                   for itemset in result.artifacts["frequent_itemsets"])

    def test_invalid_thresholds_rejected(self, basket_context):
        with pytest.raises(ServiceConfigurationError):
            AssociationRulesService(min_support=0.0).execute(basket_context)
        with pytest.raises(ServiceConfigurationError):
            AssociationRulesService(min_confidence=1.5).execute(basket_context)

    def test_empty_dataset_raises(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        with pytest.raises(ServiceExecutionError):
            AssociationRulesService().execute(context)


class TestAnomalyDetection:
    @pytest.fixture()
    def energy_context(self, engine, energy_records):
        return ServiceContext(engine=engine, dataset=engine.parallelize(energy_records, 4))

    def test_zscore_detects_injected_anomalies(self, energy_context):
        result = ZScoreAnomalyService(value_field="kwh", label_field="is_anomaly",
                                      z_threshold=2.5).execute(energy_context)
        assert result.metrics["precision"] > 0.5
        assert result.metrics["recall"] > 0.2
        assert result.metrics["anomalies_flagged"] > 0

    def test_lower_threshold_raises_recall(self, energy_context):
        strict = ZScoreAnomalyService(value_field="kwh", label_field="is_anomaly",
                                      z_threshold=3.5).execute(energy_context)
        sensitive = ZScoreAnomalyService(value_field="kwh", label_field="is_anomaly",
                                         z_threshold=1.5).execute(energy_context)
        assert sensitive.metrics["recall"] >= strict.metrics["recall"]
        assert sensitive.metrics["anomalies_flagged"] >= strict.metrics["anomalies_flagged"]

    def test_grouped_statistics_change_flags(self, energy_context):
        global_run = ZScoreAnomalyService(value_field="kwh", label_field="is_anomaly",
                                          z_threshold=2.5).execute(energy_context)
        grouped_run = ZScoreAnomalyService(value_field="kwh", label_field="is_anomaly",
                                           group_field="household_size",
                                           z_threshold=2.5).execute(energy_context)
        assert grouped_run.metrics["anomalies_flagged"] != \
            global_run.metrics["anomalies_flagged"]

    def test_output_records_flagged(self, energy_context):
        result = ZScoreAnomalyService(value_field="kwh").execute(energy_context)
        record = result.dataset.first()
        assert record["is_flagged"] in (0, 1)

    def test_iqr_detector_flags_outliers(self, energy_context):
        result = IQRAnomalyService(value_field="kwh", label_field="is_anomaly",
                                   iqr_multiplier=1.5).execute(energy_context)
        assert result.metrics["anomalies_flagged"] > 0
        assert result.metrics["precision"] > 0.2

    def test_works_without_ground_truth_labels(self, engine):
        records = [{"v": 1.0}] * 50 + [{"v": 100.0}]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = ZScoreAnomalyService(value_field="v", z_threshold=3.0).execute(context)
        assert result.metrics["anomalies_flagged"] == 1
        assert "precision" not in result.metrics

    def test_constant_series_has_no_anomalies(self, engine):
        records = [{"v": 5.0}] * 40
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = ZScoreAnomalyService(value_field="v").execute(context)
        assert result.metrics["anomalies_flagged"] == 0

    def test_empty_dataset_raises(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        with pytest.raises(ServiceExecutionError):
            ZScoreAnomalyService(value_field="v").execute(context)


class TestDescriptiveServices:
    @pytest.fixture()
    def weblog_context(self, engine, weblog_records):
        return ServiceContext(engine=engine, dataset=engine.parallelize(weblog_records, 4))

    def test_descriptive_stats(self, weblog_context):
        result = DescriptiveStatsService(fields=["latency_ms", "bytes"]) \
            .execute(weblog_context)
        stats = result.artifacts["statistics"]
        assert stats["latency_ms"]["mean"] > 0
        assert result.metrics["latency_ms.mean"] == stats["latency_ms"]["mean"]

    def test_group_aggregation_mean(self, weblog_context):
        result = GroupAggregationService(group_field="service",
                                         value_field="latency_ms",
                                         aggregation="mean").execute(weblog_context)
        table = {row["group"]: row["value"] for row in result.artifacts["table"]}
        assert set(table) == {"frontend", "catalog", "cart", "payment", "auth"}
        assert table["payment"] > table["auth"]

    def test_group_aggregation_count(self, weblog_context, weblog_records):
        result = GroupAggregationService(group_field="method").execute(weblog_context)
        total = sum(row["value"] for row in result.artifacts["table"])
        assert total == len(weblog_records)

    def test_group_aggregation_requires_value_field(self, weblog_context):
        with pytest.raises(ServiceConfigurationError):
            GroupAggregationService(group_field="service", aggregation="mean") \
                .execute(weblog_context)

    def test_group_aggregation_unknown_function(self, weblog_context):
        with pytest.raises(ServiceConfigurationError):
            GroupAggregationService(group_field="service", value_field="bytes",
                                    aggregation="median").execute(weblog_context)

    def test_top_k_records(self, weblog_context):
        result = TopKService(value_field="latency_ms", k=5).execute(weblog_context)
        rows = result.artifacts["table"]
        assert len(rows) == 5
        latencies = [row["latency_ms"] for row in rows]
        assert latencies == sorted(latencies, reverse=True)

    def test_top_k_groups(self, weblog_context):
        result = TopKService(value_field="latency_ms", k=3, group_field="url") \
            .execute(weblog_context)
        rows = result.artifacts["table"]
        assert len(rows) == 3
        assert rows[0]["value"] >= rows[1]["value"] >= rows[2]["value"]

    def test_top_k_invalid_k(self, weblog_context):
        with pytest.raises(ServiceConfigurationError):
            TopKService(value_field="latency_ms", k=0).execute(weblog_context)

    def test_top_k_empty_dataset(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        with pytest.raises(ServiceExecutionError):
            TopKService(value_field="v", k=3).execute(context)
