"""Classification and regression analytics services."""

from __future__ import annotations

import pytest

from repro.data.schemas import CHURN_SCHEMA, PATIENT_SCHEMA
from repro.errors import ServiceConfigurationError, ServiceExecutionError
from repro.services.base import ServiceContext
from repro.services.analytics.base import (evaluate_binary_classification,
                                           evaluate_regression,
                                           train_test_split_records)
from repro.services.analytics.classification import (DecisionTreeService,
                                                     LogisticRegressionService,
                                                     MajorityClassService,
                                                     NaiveBayesService)
from repro.services.analytics.regression import LinearRegressionService

CHURN_FEATURES = ["tenure_months", "monthly_charges", "num_support_calls",
                  "data_usage_gb"]
CHURN_CATEGORICAL = ["contract_type", "payment_method"]


@pytest.fixture()
def churn_context(engine, churn_records):
    dataset = engine.parallelize(churn_records, 4)
    return ServiceContext(engine=engine, dataset=dataset, schema=CHURN_SCHEMA)


@pytest.fixture()
def patient_context(engine, patient_records):
    dataset = engine.parallelize(patient_records, 4)
    return ServiceContext(engine=engine, dataset=dataset, schema=PATIENT_SCHEMA)


class TestEvaluationHelpers:
    def test_binary_metrics_perfect_prediction(self):
        metrics = evaluate_binary_classification([1, 0, 1, 0], [1, 0, 1, 0])
        assert metrics["accuracy"] == 1.0
        assert metrics["f1"] == 1.0

    def test_binary_metrics_all_wrong(self):
        metrics = evaluate_binary_classification([1, 0], [0, 1])
        assert metrics["accuracy"] == 0.0
        assert metrics["precision"] == 0.0

    def test_binary_metrics_known_confusion_matrix(self):
        actual = [1, 1, 1, 1, 0, 0, 0, 0, 0, 0]
        predicted = [1, 1, 0, 0, 1, 0, 0, 0, 0, 0]
        metrics = evaluate_binary_classification(actual, predicted)
        assert metrics["accuracy"] == pytest.approx(0.7)
        assert metrics["precision"] == pytest.approx(2 / 3)
        assert metrics["recall"] == pytest.approx(0.5)

    def test_binary_metrics_length_mismatch(self):
        with pytest.raises(ServiceExecutionError):
            evaluate_binary_classification([1], [1, 0])

    def test_binary_metrics_empty(self):
        assert evaluate_binary_classification([], [])["accuracy"] == 0.0

    def test_regression_metrics_perfect(self):
        metrics = evaluate_regression([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert metrics["rmse"] == 0.0
        assert metrics["r2"] == pytest.approx(1.0)

    def test_regression_metrics_mean_predictor_has_zero_r2(self):
        actual = [1.0, 2.0, 3.0, 4.0]
        metrics = evaluate_regression(actual, [2.5] * 4)
        assert metrics["r2"] == pytest.approx(0.0)

    def test_regression_metrics_empty_raises(self):
        with pytest.raises(ServiceExecutionError):
            evaluate_regression([], [])

    def test_split_respects_existing_tags(self):
        records = [{"__split__": "train", "v": i} for i in range(5)] + \
                  [{"__split__": "test", "v": i} for i in range(3)]
        train, test = train_test_split_records(records, 0.5, seed=1)
        assert len(train) == 5
        assert len(test) == 3

    def test_split_without_tags_is_roughly_proportional(self):
        records = [{"v": i} for i in range(1000)]
        train, test = train_test_split_records(records, 0.3, seed=1)
        assert 0.2 < len(test) / 1000 < 0.4

    def test_split_degenerate_input_still_returns_both_sides(self):
        records = [{"v": 1}, {"v": 2}]
        train, test = train_test_split_records(records, 0.001, seed=1)
        assert train and test


class TestClassifiers:
    @pytest.mark.parametrize("service_class", [LogisticRegressionService,
                                               DecisionTreeService,
                                               NaiveBayesService])
    def test_learns_better_than_chance(self, churn_context, service_class):
        service = service_class(label="churned", features=CHURN_FEATURES,
                                categorical_features=CHURN_CATEGORICAL)
        result = service.execute(churn_context)
        assert result.metrics["accuracy"] > 0.6
        assert result.metrics["f1"] > 0.3
        assert result.metrics["training_time_s"] > 0

    def test_all_classifiers_beat_the_baseline_f1(self, churn_context):
        def f1_of(service_class):
            return service_class(label="churned", features=CHURN_FEATURES,
                                 categorical_features=CHURN_CATEGORICAL) \
                .execute(churn_context).metrics["f1"]
        baseline = f1_of(MajorityClassService)
        assert f1_of(LogisticRegressionService) > baseline
        assert f1_of(DecisionTreeService) > baseline

    def test_baseline_has_zero_recall_on_minority_class(self, churn_context):
        result = MajorityClassService(label="churned", features=CHURN_FEATURES) \
            .execute(churn_context)
        assert result.metrics["recall"] == 0.0

    def test_missing_field_raises_configuration_error(self, churn_context):
        service = LogisticRegressionService(label="churned", features=["not_a_field"])
        with pytest.raises(ServiceConfigurationError):
            service.execute(churn_context)

    def test_empty_dataset_raises(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        service = NaiveBayesService(label="churned", features=["age"])
        with pytest.raises(ServiceExecutionError):
            service.execute(context)

    def test_logistic_reports_coefficients(self, churn_context):
        result = LogisticRegressionService(
            label="churned", features=CHURN_FEATURES,
            categorical_features=CHURN_CATEGORICAL).execute(churn_context)
        coefficients = result.artifacts["coefficients"]
        assert "num_support_calls" in coefficients
        assert coefficients["num_support_calls"] > 0  # more calls, more churn
        assert "contract_type=monthly" in coefficients

    def test_decision_tree_reports_rules_and_respects_depth(self, churn_context):
        result = DecisionTreeService(label="churned", features=CHURN_FEATURES,
                                     categorical_features=CHURN_CATEGORICAL,
                                     max_depth=3).execute(churn_context)
        assert result.artifacts["tree_depth"] <= 3
        assert result.artifacts["tree_leaves"] >= 2
        assert any("=> class" in rule for rule in result.artifacts["rules"])

    def test_depth_one_tree_is_a_stump(self, churn_context):
        result = DecisionTreeService(label="churned", features=CHURN_FEATURES,
                                     max_depth=1).execute(churn_context)
        assert result.artifacts["tree_depth"] <= 1

    def test_predictions_dataset_exposed(self, churn_context):
        result = NaiveBayesService(label="churned", features=CHURN_FEATURES) \
            .execute(churn_context)
        predictions = result.artifacts["predictions"].collect()
        assert all(set(p) == {"actual", "predicted"} for p in predictions)
        assert len(predictions) == int(result.metrics["test_records"])

    def test_respects_prepared_split_field(self, engine, churn_records):
        tagged = [dict(record, __split__="train" if index % 2 else "test")
                  for index, record in enumerate(churn_records)]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(tagged, 4))
        result = NaiveBayesService(label="churned", features=CHURN_FEATURES) \
            .execute(context)
        assert result.metrics["test_records"] == len(churn_records) // 2


class TestLinearRegression:
    def test_recovers_cost_structure(self, patient_context):
        result = LinearRegressionService(
            target="treatment_cost", features=["age", "length_of_stay"],
            categorical_features=["diagnosis"]).execute(patient_context)
        assert result.metrics["r2"] > 0.7
        assert result.artifacts["coefficients"]["length_of_stay"] > 0

    def test_missing_target_raises(self, patient_context):
        service = LinearRegressionService(target="nope", features=["age"])
        with pytest.raises(ServiceConfigurationError):
            service.execute(patient_context)

    def test_empty_dataset_raises(self, engine):
        context = ServiceContext(engine=engine, dataset=engine.empty())
        with pytest.raises(ServiceExecutionError):
            LinearRegressionService(target="y", features=["x"]).execute(context)

    def test_perfect_linear_relationship(self, engine):
        records = [{"x": float(i), "y": 3.0 * i + 7.0} for i in range(200)]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 2))
        result = LinearRegressionService(target="y", features=["x"]).execute(context)
        assert result.metrics["r2"] == pytest.approx(1.0, abs=1e-6)
        assert result.artifacts["coefficients"]["x"] == pytest.approx(3.0, abs=1e-6)
        assert result.artifacts["intercept"] == pytest.approx(7.0, abs=1e-4)
