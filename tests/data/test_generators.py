"""Synthetic generators: determinism, schema conformance, embedded patterns."""

from __future__ import annotations

import pytest

from repro.data.generators import (ChurnDataGenerator, EnergyDataGenerator,
                                   PatientRecordGenerator,
                                   RetailTransactionGenerator, WebLogGenerator,
                                   generator_for_scenario)
from repro.errors import DataError

ALL_GENERATORS = [ChurnDataGenerator, EnergyDataGenerator, WebLogGenerator,
                  RetailTransactionGenerator, PatientRecordGenerator]


class TestGeneratorContract:
    @pytest.mark.parametrize("generator_class", ALL_GENERATORS)
    def test_records_conform_to_schema(self, generator_class):
        generator_class(seed=1).validate_sample(40)

    @pytest.mark.parametrize("generator_class", ALL_GENERATORS)
    def test_same_seed_same_records(self, generator_class):
        assert generator_class(seed=9).generate(20) == generator_class(seed=9).generate(20)

    @pytest.mark.parametrize("generator_class", ALL_GENERATORS)
    def test_different_seed_different_records(self, generator_class):
        assert generator_class(seed=1).generate(20) != generator_class(seed=2).generate(20)

    @pytest.mark.parametrize("generator_class", ALL_GENERATORS)
    def test_range_generation_is_consistent_with_full_generation(self, generator_class):
        generator = generator_class(seed=4)
        full = generator.generate(30)
        assert list(generator.generate_range(10, 20)) == full[10:20]

    def test_invalid_range_rejected(self):
        with pytest.raises(DataError):
            list(ChurnDataGenerator().generate_range(5, 2))

    def test_generator_for_scenario_factory(self):
        assert isinstance(generator_for_scenario("churn"), ChurnDataGenerator)
        assert isinstance(generator_for_scenario("retail", seed=3),
                          RetailTransactionGenerator)
        with pytest.raises(DataError):
            generator_for_scenario("unknown")


class TestChurnGroundTruth:
    def test_churn_rate_is_mixed(self, churn_records):
        rate = sum(record["churned"] for record in churn_records) / len(churn_records)
        assert 0.15 < rate < 0.75

    def test_monthly_contracts_churn_more(self, churn_records):
        def rate(contract):
            selected = [r for r in churn_records if r["contract_type"] == contract]
            return sum(r["churned"] for r in selected) / len(selected)
        assert rate("monthly") > rate("two_year")

    def test_support_calls_correlate_with_churn(self, churn_records):
        churned = [r["num_support_calls"] for r in churn_records if r["churned"]]
        stayed = [r["num_support_calls"] for r in churn_records if not r["churned"]]
        assert sum(churned) / len(churned) > sum(stayed) / len(stayed)

    def test_ids_are_unique(self, churn_records):
        ids = [r["customer_id"] for r in churn_records]
        assert len(ids) == len(set(ids))


class TestEnergyGroundTruth:
    def test_anomaly_rate_close_to_configured(self):
        records = EnergyDataGenerator(seed=3, anomaly_rate=0.05).generate(4000)
        rate = sum(r["is_anomaly"] for r in records) / len(records)
        assert 0.02 < rate < 0.09

    def test_anomalous_readings_deviate(self, energy_records):
        normal = [r["kwh"] for r in energy_records if not r["is_anomaly"]]
        anomalies = [r for r in energy_records if r["is_anomaly"]]
        mean = sum(normal) / len(normal)
        assert anomalies, "the fixture should contain anomalies"
        deviations = [abs(r["kwh"] - mean) / mean for r in anomalies]
        # spikes deviate far above the mean, outages sit ~100% below it
        assert sum(d > 0.8 for d in deviations) / len(deviations) > 0.6

    def test_daily_profile_peaks_during_day(self):
        records = EnergyDataGenerator(seed=1, num_meters=5, anomaly_rate=0.0).generate(5 * 24 * 4)
        by_hour = {}
        for record in records:
            by_hour.setdefault(record["hour_of_day"], []).append(record["kwh"])
        night = sum(by_hour[3]) / len(by_hour[3])
        day = sum(by_hour[13]) / len(by_hour[13])
        assert day > night

    def test_meter_count_respected(self):
        records = EnergyDataGenerator(seed=2, num_meters=7).generate(100)
        assert len({r["meter_id"] for r in records}) == 7

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DataError):
            EnergyDataGenerator(num_meters=0)
        with pytest.raises(DataError):
            EnergyDataGenerator(anomaly_rate=1.5)


class TestRetailGroundTruth:
    def test_embedded_rule_pasta_tomato_sauce(self, retail_records):
        pasta = [r for r in retail_records if "pasta" in r["basket"]]
        with_sauce = [r for r in pasta if "tomato_sauce" in r["basket"]]
        baseline = [r for r in retail_records if "tomato_sauce" in r["basket"]]
        confidence = len(with_sauce) / len(pasta)
        support = len(baseline) / len(retail_records)
        assert confidence > support  # lift > 1 by construction

    def test_totals_match_prices(self, retail_records):
        from repro.data.generators import RetailTransactionGenerator as G
        for record in retail_records[:50]:
            expected = round(sum(G.PRICES[p] for p in record["basket"]), 2)
            assert record["total_amount"] == pytest.approx(expected)

    def test_baskets_are_sorted_and_unique(self, retail_records):
        for record in retail_records[:100]:
            assert record["basket"] == sorted(set(record["basket"]))


class TestWebLogGroundTruth:
    def test_url_popularity_is_skewed(self, weblog_records):
        counts = {}
        for record in weblog_records:
            counts[record["url"]] = counts.get(record["url"], 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > 3 * ranked[len(ranked) // 2]

    def test_payment_service_is_slowest_on_average(self, weblog_records):
        def mean_latency(service):
            selected = [r["latency_ms"] for r in weblog_records if r["service"] == service]
            return sum(selected) / len(selected)
        assert mean_latency("payment") > mean_latency("auth")

    def test_some_user_ids_missing(self, weblog_records):
        assert any(record["user_id"] is None for record in weblog_records)
        assert any(record["user_id"] is not None for record in weblog_records)

    def test_error_statuses_present(self, weblog_records):
        assert any(record["status"] >= 500 for record in weblog_records)


class TestPatientGroundTruth:
    def test_readmission_rate_is_mixed(self, patient_records):
        rate = sum(r["readmitted"] for r in patient_records) / len(patient_records)
        assert 0.1 < rate < 0.9

    def test_cost_grows_with_length_of_stay(self, patient_records):
        short = [r["treatment_cost"] for r in patient_records if r["length_of_stay"] <= 2]
        long = [r["treatment_cost"] for r in patient_records if r["length_of_stay"] >= 8]
        assert sum(long) / len(long) > sum(short) / len(short)

    def test_ages_within_bounds(self, patient_records):
        assert all(0 <= r["age"] <= 99 for r in patient_records)
