"""Data sources: partitioned reads, CSV round-trips, stream sources."""

from __future__ import annotations

import pytest

from repro.data.generators import ChurnDataGenerator
from repro.data.schemas import CHURN_SCHEMA, RETAIL_SCHEMA
from repro.data.sources import (CSVFileSource, GeneratorSource, GeneratorStreamSource,
                                InMemorySource, ReplayStreamSource, write_csv)
from repro.errors import SourceError


class TestInMemorySource:
    def test_partitions_cover_all_records(self):
        records = [{"v": i} for i in range(10)]
        source = InMemorySource("mem", records)
        gathered = []
        for partition in range(3):
            gathered.extend(source.read_partition(partition, 3))
        assert gathered == records

    def test_estimated_size(self):
        assert InMemorySource("mem", [{"v": 1}] * 7).estimated_size() == 7

    def test_read_all(self):
        source = InMemorySource("mem", [{"v": 1}, {"v": 2}])
        assert list(source.read_all()) == [{"v": 1}, {"v": 2}]

    def test_repr_mentions_name(self):
        assert "mem" in repr(InMemorySource("mem", []))


class TestGeneratorSource:
    def test_partition_contents_independent_of_partition_count(self):
        generator = ChurnDataGenerator(seed=3)
        source = GeneratorSource(generator, 100)
        two_parts = [record for p in range(2) for record in source.read_partition(p, 2)]
        five_parts = [record for p in range(5) for record in source.read_partition(p, 5)]
        assert two_parts == five_parts

    def test_matches_direct_generation(self):
        generator = ChurnDataGenerator(seed=3)
        source = GeneratorSource(generator, 50)
        assert list(source.read_partition(0, 1)) == ChurnDataGenerator(seed=3).generate(50)

    def test_negative_count_rejected(self):
        with pytest.raises(SourceError):
            GeneratorSource(ChurnDataGenerator(), -1)

    def test_schema_is_exposed(self):
        assert GeneratorSource(ChurnDataGenerator(), 10).schema is CHURN_SCHEMA

    def test_source_works_with_engine(self, engine):
        source = GeneratorSource(ChurnDataGenerator(seed=1), 200)
        ds = engine.from_source(source, 4)
        assert ds.count() == 200


class TestCSVSource:
    def test_roundtrip_with_schema_types(self, tmp_path):
        records = ChurnDataGenerator(seed=2).generate(30)
        path = str(tmp_path / "churn.csv")
        assert write_csv(path, records, CHURN_SCHEMA) == 30
        source = CSVFileSource(path, CHURN_SCHEMA)
        loaded = list(source.read_all())
        assert len(loaded) == 30
        assert loaded[0]["age"] == records[0]["age"]
        assert isinstance(loaded[0]["monthly_charges"], float)
        assert isinstance(loaded[0]["tenure_months"], int)

    def test_list_field_roundtrip(self, tmp_path):
        from repro.data.generators import RetailTransactionGenerator
        records = RetailTransactionGenerator(seed=2).generate(10)
        path = str(tmp_path / "retail.csv")
        write_csv(path, records, RETAIL_SCHEMA)
        loaded = list(CSVFileSource(path, RETAIL_SCHEMA).read_all())
        assert loaded[0]["basket"] == records[0]["basket"]

    def test_missing_file_raises(self):
        with pytest.raises(SourceError):
            CSVFileSource("/does/not/exist.csv")

    def test_without_schema_values_stay_strings(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a,b\n1,x\n2,y\n", encoding="utf-8")
        loaded = list(CSVFileSource(str(path)).read_all())
        assert loaded == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_partitioned_read(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("a\n" + "\n".join(str(i) for i in range(10)), encoding="utf-8")
        source = CSVFileSource(str(path))
        assert source.estimated_size() == 10
        first = list(source.read_partition(0, 2))
        second = list(source.read_partition(1, 2))
        assert len(first) + len(second) == 10


class TestStreamSources:
    def test_generator_stream_produces_disjoint_batches(self):
        stream = GeneratorStreamSource(ChurnDataGenerator(seed=1), batch_size=10)
        first = stream.next_batch(0)
        second = stream.next_batch(1)
        assert len(first) == len(second) == 10
        assert first[0]["customer_id"] != second[0]["customer_id"]

    def test_generator_stream_respects_max_batches(self):
        stream = GeneratorStreamSource(ChurnDataGenerator(seed=1), batch_size=5,
                                       max_batches=2)
        assert stream.next_batch(0) is not None
        assert stream.next_batch(1) is not None
        assert stream.next_batch(2) is None

    def test_generator_stream_invalid_batch_size(self):
        with pytest.raises(SourceError):
            GeneratorStreamSource(ChurnDataGenerator(), batch_size=0)

    def test_replay_stream_ends_when_exhausted(self):
        stream = ReplayStreamSource([{"v": i} for i in range(7)], batch_size=3)
        assert len(stream.next_batch(0)) == 3
        assert len(stream.next_batch(1)) == 3
        assert len(stream.next_batch(2)) == 1
        assert stream.next_batch(3) is None

    def test_replay_stream_invalid_batch_size(self):
        with pytest.raises(SourceError):
            ReplayStreamSource([], batch_size=0)
