"""Schemas: validation, personal-data flags, projection."""

from __future__ import annotations

import pytest

from repro.data.schemas import (BUILTIN_SCHEMAS, CHURN_SCHEMA, ENERGY_SCHEMA,
                                PATIENT_SCHEMA, RETAIL_SCHEMA, WEB_LOG_SCHEMA,
                                Field, Schema)
from repro.errors import SchemaError


class TestField:
    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError):
            Field("x", "decimal")

    def test_validate_accepts_matching_type(self):
        Field("x", "int").validate(5)
        Field("x", "float").validate(5)       # int is an acceptable float
        Field("x", "str").validate("a")
        Field("x", "list").validate([1, 2])

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            Field("x", "int").validate("5")
        with pytest.raises(SchemaError):
            Field("x", "str").validate(3)

    def test_bool_is_not_a_number(self):
        with pytest.raises(SchemaError):
            Field("x", "int").validate(True)
        with pytest.raises(SchemaError):
            Field("x", "float").validate(False)

    def test_nullable_controls_none(self):
        Field("x", "int", nullable=True).validate(None)
        with pytest.raises(SchemaError):
            Field("x", "int").validate(None)

    def test_category_membership(self):
        field = Field("x", "category", categories=("a", "b"))
        field.validate("a")
        with pytest.raises(SchemaError):
            field.validate("c")


class TestSchema:
    def test_duplicate_field_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", (Field("a", "int"), Field("a", "str")))

    def test_field_lookup(self):
        assert CHURN_SCHEMA.field("age").dtype == "int"
        assert CHURN_SCHEMA.has_field("churned")
        assert not CHURN_SCHEMA.has_field("nope")
        with pytest.raises(SchemaError):
            CHURN_SCHEMA.field("nope")

    def test_validate_record_happy_path(self):
        record = {"a": 1, "b": "x"}
        Schema("s", (Field("a", "int"), Field("b", "str"))).validate_record(record)

    def test_validate_record_missing_required_field(self):
        schema = Schema("s", (Field("a", "int"),))
        with pytest.raises(SchemaError):
            schema.validate_record({})

    def test_validate_record_missing_nullable_field_ok(self):
        schema = Schema("s", (Field("a", "int", nullable=True),))
        schema.validate_record({})

    def test_validate_record_rejects_non_dict(self):
        with pytest.raises(SchemaError):
            Schema("s", (Field("a", "int"),)).validate_record([1])

    def test_validate_records_counts(self):
        schema = Schema("s", (Field("a", "int"),))
        assert schema.validate_records([{"a": 1}, {"a": 2}]) == 2

    def test_project_keeps_order_and_fields(self):
        projected = CHURN_SCHEMA.project(["age", "churned"])
        assert projected.field_names == ["age", "churned"]

    def test_project_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            CHURN_SCHEMA.project(["does_not_exist"])

    def test_drop_removes_fields(self):
        dropped = CHURN_SCHEMA.drop(["customer_id"])
        assert not dropped.has_field("customer_id")
        assert dropped.has_field("age")

    def test_personal_data_flags(self):
        assert CHURN_SCHEMA.is_personal_data
        assert "customer_id" in CHURN_SCHEMA.sensitive_fields
        assert "age" in CHURN_SCHEMA.quasi_identifiers
        assert PATIENT_SCHEMA.is_personal_data
        assert "diagnosis" in PATIENT_SCHEMA.sensitive_fields


class TestBuiltinSchemas:
    @pytest.mark.parametrize("schema", [CHURN_SCHEMA, ENERGY_SCHEMA, WEB_LOG_SCHEMA,
                                        RETAIL_SCHEMA, PATIENT_SCHEMA])
    def test_every_builtin_schema_has_fields(self, schema):
        assert len(schema.fields) >= 5
        assert schema.name

    def test_builtin_registry_covers_all_scenarios(self):
        assert set(BUILTIN_SCHEMAS) == {"churn", "energy", "web_logs", "retail",
                                        "patients"}

    def test_patient_schema_quasi_identifiers(self):
        assert set(PATIENT_SCHEMA.quasi_identifiers) == {"age", "gender", "zip_code"}

    def test_weblog_user_id_is_nullable_and_sensitive(self):
        field = WEB_LOG_SCHEMA.field("user_id")
        assert field.nullable
        assert field.sensitive
