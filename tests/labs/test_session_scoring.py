"""Lab sessions (trial and error) and challenge scoring."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.errors import SessionError
from repro.labs.catalog import build_default_challenges
from repro.labs.scoring import ChallengeScorer
from repro.labs.session import LabSession
from repro.platform.api import BDAaaSPlatform


def _fast_churn_challenge():
    """The churn challenge with its data shrunk so session tests stay fast."""
    from repro.labs.challenge import merge_spec
    from repro.labs.scenarios import churn_retention_challenge
    challenge = churn_retention_challenge()
    shrunk = merge_spec(challenge.spec, {"source": {"num_records": 1500},
                                         "deployment": {"num_partitions": 2,
                                                        "num_workers": 1}})
    return challenge.__class__(
        key=challenge.key, title=challenge.title, brief=challenge.brief,
        scenario=challenge.scenario, base_spec=tuple(shrunk.items()),
        dimensions=challenge.dimensions,
        success_criteria=challenge.success_criteria,
        learning_points=challenge.learning_points,
        difficulty=challenge.difficulty)


@pytest.fixture(scope="module")
def lab_session():
    """One trainee session with three executed trials (module-scoped: expensive)."""
    platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=20))
    trainee = platform.register_user("ada", role="trainee")
    session = LabSession(platform, trainee, _fast_churn_challenge())
    session.run_option({"model": "logistic"})
    session.run_option({"model": "baseline"})
    session.run_option({"model": "logistic", "features": "minimal"},
                       label="starved-features")
    return session


class TestLabSession:
    def test_brief_and_options_exposed(self, lab_session):
        assert "churn" in lab_session.brief().lower()
        options = lab_session.available_options()
        assert set(options) == {"model", "features", "volume"}
        assert "logistic" in options["model"]

    def test_trials_recorded_with_runs(self, lab_session):
        assert len(lab_session.trials) == 3
        assert all(trial.succeeded for trial in lab_session.trials)
        assert lab_session.trials[0].label == "model=logistic"
        assert lab_session.trials[2].label == "starved-features"

    def test_budget_decreases_with_trials(self, lab_session):
        assert lab_session.remaining_budget() == 20 - 3

    def test_workspace_holds_run_history(self, lab_session):
        assert len(lab_session.workspace.runs) == 3

    def test_trial_lookup(self, lab_session):
        assert lab_session.trial("model=baseline").selections == {"model": "baseline"}
        with pytest.raises(SessionError):
            lab_session.trial("never-ran")

    def test_compare_all_successful_trials(self, lab_session):
        report = lab_session.compare()
        assert len(report.run_labels) == 3
        assert report.row("accuracy").winner == "model=logistic"

    def test_compare_subset(self, lab_session):
        report = lab_session.compare(["model=logistic", "model=baseline"])
        assert report.run_labels == ["model=logistic", "model=baseline"]

    def test_best_trial_by_score_and_by_metric(self, lab_session):
        assert lab_session.best_trial().label == "model=logistic"
        assert lab_session.best_trial("accuracy").label == "model=logistic"
        fastest = lab_session.best_trial("execution_time_s", higher_is_better=False)
        assert fastest.label in {trial.label for trial in lab_session.trials}

    def test_best_trial_unknown_metric(self, lab_session):
        with pytest.raises(SessionError):
            lab_session.best_trial("nonexistent_metric")

    def test_summary(self, lab_session):
        summary = lab_session.summary()
        assert summary["trials"] == 3
        assert summary["successful"] == 3
        assert summary["distinct_configurations"] == 3
        assert summary["best_score"] > 0

    def test_failed_configuration_is_recorded_not_raised(self):
        platform = BDAaaSPlatform(PlatformConfig(free_tier_max_rows=1000))
        trainee = platform.register_user("bob", role="trainee")
        session = LabSession(platform, trainee, _fast_churn_challenge())
        # the "full" volume option asks for 20k records: above this tier's quota
        trial = session.run_option({"volume": "full"})
        assert not trial.succeeded
        assert "quota" in trial.error.lower() or "records" in trial.error.lower()
        with pytest.raises(SessionError):
            session.compare()

    def test_quota_exhaustion_surfaces_in_trials(self):
        platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=1))
        trainee = platform.register_user("carol", role="trainee")
        session = LabSession(platform, trainee, _fast_churn_challenge())
        assert session.run_option({"model": "baseline"}).succeeded
        second = session.run_option({"model": "logistic"})
        assert not second.succeeded
        assert session.remaining_budget() == 0

    def test_run_all_options_sweeps_one_dimension(self):
        platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=20))
        trainee = platform.register_user("dave", role="trainee")
        session = LabSession(platform, trainee, _fast_churn_challenge())
        records = session.run_all_options("features", fixed={"model": "bayes"})
        assert len(records) == 3
        assert all(record.selections["model"] == "bayes" for record in records)


class TestChallengeScorer:
    def test_score_shape(self, lab_session):
        score = ChallengeScorer().score(lab_session)
        assert score.challenge_key == "churn-retention"
        assert score.best_trial_label == "model=logistic"
        assert 0 <= score.total_points <= 100
        assert score.achievement_points > 0
        assert len(score.criteria) == 3

    def test_exploration_credit_scales_with_distinct_trials(self, lab_session):
        score = ChallengeScorer().score(lab_session)
        assert score.exploration_points == pytest.approx(30.0 * 3 / 4)

    def test_feedback_mentions_learning_points_and_criteria(self, lab_session):
        score = ChallengeScorer().score(lab_session)
        text = " ".join(score.feedback)
        assert "takeaway" in text
        assert "met:" in text

    def test_scoring_requires_a_successful_trial(self):
        platform = BDAaaSPlatform()
        trainee = platform.register_user("eve", role="trainee")
        session = LabSession(platform, trainee, _fast_churn_challenge())
        with pytest.raises(SessionError):
            ChallengeScorer().score(session)

    def test_score_serialisable(self, lab_session):
        import json
        json.dumps(ChallengeScorer().score(lab_session).as_dict())

    def test_explicit_best_trial_override(self, lab_session):
        baseline_trial = lab_session.trial("model=baseline")
        score = ChallengeScorer().score(lab_session, best_trial=baseline_trial)
        assert score.best_trial_label == "model=baseline"
        assert not score.passed  # the baseline misses the accuracy criterion
