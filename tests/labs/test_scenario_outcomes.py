"""The built-in challenges actually teach what their learning points claim.

Each test executes two specific option choices of a challenge (on shrunken
data, to stay fast) and checks the designed contrast between them.
"""

from __future__ import annotations

import pytest

from repro.labs.catalog import build_default_challenges
from repro.labs.challenge import merge_spec

_SHRINK = {"deployment": {"num_partitions": 2, "num_workers": 1}}


def _run(compiler, runner, challenge, selections, num_records, label):
    spec = merge_spec(challenge.build_spec(selections),
                      {**_SHRINK, "source": {"num_records": num_records}})
    return runner.run(compiler.compile(spec), option_label=label)


@pytest.fixture(scope="module")
def challenges():
    return build_default_challenges()


class TestMarketBasketThresholds:
    def test_permissive_thresholds_find_more_rules_than_strict(self, challenges,
                                                                compiler, runner):
        challenge = challenges.get("market-basket")
        strict = _run(compiler, runner, challenge, {"thresholds": "strict"},
                      1500, "strict")
        permissive = _run(compiler, runner, challenge, {"thresholds": "permissive"},
                          1500, "permissive")
        assert permissive.indicator("num_rules") > strict.indicator("num_rules")
        assert permissive.indicator("num_frequent_itemsets") > \
            strict.indicator("num_frequent_itemsets")

    def test_balanced_option_meets_the_success_criteria(self, challenges, compiler,
                                                        runner):
        challenge = challenges.get("market-basket")
        run = _run(compiler, runner, challenge, {}, 1500, "balanced")
        assert run.indicator("num_rules") >= 5
        assert run.indicator("max_lift") >= 2.0
        # customer identifiers were masked by the GDPR-mandated protection step
        assert run.indicator("masked_fields") >= 1


class TestEnergyDetectorOptions:
    def test_sensitive_threshold_trades_precision_for_recall(self, challenges,
                                                             compiler, runner):
        challenge = challenges.get("energy-anomaly")
        default = _run(compiler, runner, challenge, {"detector": "zscore"},
                       2500, "zscore")
        sensitive = _run(compiler, runner, challenge,
                         {"detector": "zscore-sensitive"}, 2500, "sensitive")
        assert sensitive.indicator("recall") >= default.indicator("recall")
        assert sensitive.indicator("anomalies_flagged") > \
            default.indicator("anomalies_flagged")

    def test_streaming_mode_reports_latency_indicators(self, challenges, compiler,
                                                       runner):
        challenge = challenges.get("energy-anomaly")
        run = _run(compiler, runner, challenge, {"mode": "streaming"}, 2000, "stream")
        assert run.indicator("num_batches") >= 1
        assert run.indicator("mean_latency_s") > 0


class TestPatientPrivacyOptions:
    def test_policy_floor_applies_even_when_trainee_declares_less(self, challenges,
                                                                  compiler, runner):
        challenge = challenges.get("patient-privacy")
        weak = _run(compiler, runner, challenge, {"privacy": "weak"}, 2000, "weak")
        # the declared k=2 is strengthened to the policy's k=10
        assert weak.indicator("achieved_k") >= 10
        assert weak.indicator("policy_violations") == 0

    def test_regression_option_reports_r2(self, challenges, compiler, runner):
        challenge = challenges.get("patient-privacy")
        run = _run(compiler, runner, challenge, {"analysis": "cost-model"},
                   2000, "cost-model")
        assert run.indicator("r2") is not None
        assert run.indicator("r2") > 0.3


class TestWebOperationsOptions:
    def test_different_questions_compile_to_different_pipelines(self, challenges,
                                                                compiler):
        challenge = challenges.get("web-operations")
        latency = compiler.compile(challenge.build_spec({"analysis": "latency"}))
        ranking = compiler.compile(challenge.build_spec({"analysis": "top-urls"}))
        anomalies = compiler.compile(
            challenge.build_spec({"analysis": "latency-anomalies"}))
        services = {campaign.option_signature()["traffic-by-service"]
                    for campaign in (latency, ranking, anomalies)}
        assert len(services) == 3

    def test_cluster_option_attaches_nonzero_cost_estimate(self, challenges,
                                                           compiler, runner):
        challenge = challenges.get("web-operations")
        run = _run(compiler, runner, challenge,
                   {"deployment": "small-cluster"}, 3000, "small-cluster")
        assert run.indicator("estimated_cost_usd") > 0
