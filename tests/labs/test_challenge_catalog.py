"""Challenge model, spec patching, and the challenge catalogue."""

from __future__ import annotations

import pytest

from repro.core.dsl import parse_spec
from repro.core.vocabulary import Objective
from repro.errors import ChallengeError
from repro.labs.catalog import ChallengeCatalog, build_default_challenges
from repro.labs.challenge import Challenge, DesignDimension, DesignOption, merge_spec
from repro.labs.scenarios import all_builtin_challenges, churn_retention_challenge


class TestMergeSpec:
    def test_scalar_replacement(self):
        assert merge_spec({"a": 1}, {"a": 2}) == {"a": 2}

    def test_nested_dict_merge(self):
        base = {"source": {"scenario": "churn", "num_records": 100}}
        patch = {"source": {"num_records": 200}}
        merged = merge_spec(base, patch)
        assert merged["source"] == {"scenario": "churn", "num_records": 200}

    def test_original_not_mutated(self):
        base = {"a": {"b": 1}}
        merge_spec(base, {"a": {"b": 2}})
        assert base["a"]["b"] == 1

    def test_goal_merge_by_id(self):
        base = {"goals": [{"id": "g1", "task": "classification", "params": {"label": "y"}},
                          {"id": "g2", "task": "clustering"}]}
        patch = {"goals": [{"id": "g1", "model": "decision_tree"}]}
        merged = merge_spec(base, patch)
        assert merged["goals"][0]["model"] == "decision_tree"
        assert merged["goals"][0]["params"] == {"label": "y"}
        assert merged["goals"][1] == {"id": "g2", "task": "clustering"}

    def test_goal_merge_appends_new_goal(self):
        base = {"goals": [{"id": "g1", "task": "classification"}]}
        patch = {"goals": [{"id": "g3", "task": "ranking"}]}
        merged = merge_spec(base, patch)
        assert [goal["id"] for goal in merged["goals"]] == ["g1", "g3"]

    def test_list_values_replaced_not_merged(self):
        merged = merge_spec({"preparation": {"normalize": ["a"]}},
                            {"preparation": {"normalize": ["b", "c"]}})
        assert merged["preparation"]["normalize"] == ["b", "c"]


class TestChallengeModel:
    def test_dimension_lookup_and_defaults(self):
        challenge = churn_retention_challenge()
        dimension = challenge.dimension("model")
        assert set(dimension.option_keys) == {"logistic", "tree", "bayes", "baseline"}
        assert dimension.default_option.key == "logistic"
        with pytest.raises(ChallengeError):
            challenge.dimension("nonexistent")
        with pytest.raises(ChallengeError):
            dimension.option("nonexistent")

    def test_num_combinations(self):
        challenge = churn_retention_challenge()
        assert challenge.num_combinations() == 4 * 3 * 2

    def test_build_spec_defaults(self):
        challenge = churn_retention_challenge()
        spec = challenge.build_spec()
        model = parse_spec(spec)
        assert model.name == "churn-retention"
        assert model.goals[0].preferred_model == "logistic_regression"

    def test_build_spec_with_selection(self):
        challenge = churn_retention_challenge()
        spec = challenge.build_spec({"model": "tree", "volume": "full"})
        model = parse_spec(spec)
        assert model.goals[0].preferred_model == "decision_tree"
        assert model.source.num_records == 20000

    def test_build_spec_unknown_dimension_rejected(self):
        with pytest.raises(ChallengeError):
            churn_retention_challenge().build_spec({"made_up": "x"})

    def test_build_spec_unknown_option_rejected(self):
        with pytest.raises(ChallengeError):
            churn_retention_challenge().build_spec({"model": "svm"})

    def test_describe_lists_dimensions_and_criteria(self):
        text = churn_retention_challenge().describe()
        assert "Analytics model" in text
        assert "accuracy >= 0.68" in text

    def test_dimension_without_options_rejected(self):
        with pytest.raises(ChallengeError):
            DesignDimension("d", "t", options=())

    def test_duplicate_option_keys_rejected(self):
        option = DesignOption.from_patch("a", "A", {})
        with pytest.raises(ChallengeError):
            DesignDimension("d", "t", options=(option, option))

    def test_duplicate_dimension_keys_rejected(self):
        option = DesignOption.from_patch("a", "A", {})
        dimension = DesignDimension("d", "t", options=(option,))
        with pytest.raises(ChallengeError):
            Challenge(key="c", title="t", brief="b", scenario="churn",
                      base_spec=(), dimensions=(dimension, dimension))


class TestBuiltinChallenges:
    @pytest.mark.parametrize("challenge", all_builtin_challenges(),
                             ids=lambda challenge: challenge.key)
    def test_base_and_every_single_option_produce_valid_specs(self, challenge):
        parse_spec(challenge.build_spec())
        for dimension in challenge.dimensions:
            for option in dimension.options:
                parse_spec(challenge.build_spec({dimension.key: option.key}))

    @pytest.mark.parametrize("challenge", all_builtin_challenges(),
                             ids=lambda challenge: challenge.key)
    def test_every_option_compiles(self, challenge, compiler):
        compiler.compile(challenge.build_spec())
        for dimension in challenge.dimensions:
            for option in dimension.options:
                compiler.compile(challenge.build_spec({dimension.key: option.key}))

    @pytest.mark.parametrize("challenge", all_builtin_challenges(),
                             ids=lambda challenge: challenge.key)
    def test_challenges_have_briefs_and_criteria(self, challenge):
        assert len(challenge.brief) > 50
        assert challenge.success_criteria
        assert challenge.learning_points
        assert all(isinstance(objective, Objective)
                   for objective in challenge.success_criteria)

    def test_free_tier_data_volumes(self):
        for challenge in all_builtin_challenges():
            base = challenge.build_spec()
            assert base["source"]["num_records"] <= 100_000


class TestChallengeCatalog:
    def test_default_catalog_contents(self):
        catalog = build_default_challenges()
        assert len(catalog) == 5
        assert "churn-retention" in catalog
        assert catalog.get("market-basket").scenario == "retail"

    def test_unknown_challenge(self):
        with pytest.raises(ChallengeError):
            build_default_challenges().get("mystery")

    def test_duplicate_registration_rejected(self):
        catalog = build_default_challenges()
        with pytest.raises(ChallengeError):
            catalog.register(churn_retention_challenge())

    def test_filters(self):
        catalog = build_default_challenges()
        assert {challenge.key for challenge in catalog.by_difficulty("beginner")} == \
            {"churn-retention", "market-basket"}
        assert [challenge.key for challenge in catalog.by_scenario("patients")] == \
            ["patient-privacy"]

    def test_overview_lists_every_challenge(self):
        overview = build_default_challenges().overview()
        for key in build_default_challenges().keys:
            assert key in overview

    def test_empty_catalog(self):
        catalog = ChallengeCatalog()
        assert len(catalog) == 0
        assert "anything" not in catalog
