"""Property-based tests of the challenge spec-patching machinery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl import parse_spec
from repro.labs.challenge import merge_spec
from repro.labs.scenarios import all_builtin_challenges

_CHALLENGES = all_builtin_challenges()

_scalars = st.one_of(st.integers(-100, 100), st.booleans(),
                     st.text(max_size=8), st.none())
_values = st.recursive(_scalars,
                       lambda children: st.one_of(
                           st.lists(children, max_size=3),
                           st.dictionaries(st.text(min_size=1, max_size=6), children,
                                           max_size=3)),
                       max_leaves=8)
_dicts = st.dictionaries(st.text(min_size=1, max_size=6), _values, max_size=4)


class TestMergeSpecProperties:
    @settings(max_examples=50, deadline=None)
    @given(base=_dicts, patch=_dicts)
    def test_patch_keys_always_present_in_result(self, base, patch):
        merged = merge_spec(base, patch)
        assert set(patch).issubset(set(merged))

    @settings(max_examples=50, deadline=None)
    @given(base=_dicts)
    def test_empty_patch_is_identity(self, base):
        assert merge_spec(base, {}) == base

    @settings(max_examples=50, deadline=None)
    @given(base=_dicts, patch=_dicts)
    def test_inputs_never_mutated(self, base, patch):
        import copy
        base_copy, patch_copy = copy.deepcopy(base), copy.deepcopy(patch)
        merge_spec(base, patch)
        assert base == base_copy
        assert patch == patch_copy

    @settings(max_examples=50, deadline=None)
    @given(base=_dicts, patch=_dicts)
    def test_merge_is_idempotent_for_same_patch(self, base, patch):
        once = merge_spec(base, patch)
        twice = merge_spec(once, patch)
        assert once == twice


class TestChallengeSelectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), challenge=st.sampled_from(_CHALLENGES))
    def test_any_full_selection_produces_a_parseable_spec(self, data, challenge):
        selections = {}
        for dimension in challenge.dimensions:
            selections[dimension.key] = data.draw(
                st.sampled_from(dimension.option_keys), label=dimension.key)
        model = parse_spec(challenge.build_spec(selections))
        assert model.goals

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), challenge=st.sampled_from(_CHALLENGES))
    def test_any_partial_selection_produces_a_parseable_spec(self, data, challenge):
        dimension_keys = data.draw(
            st.lists(st.sampled_from(challenge.dimension_keys), unique=True,
                     max_size=len(challenge.dimension_keys)))
        selections = {key: data.draw(
            st.sampled_from(challenge.dimension(key).option_keys), label=key)
            for key in dimension_keys}
        parse_spec(challenge.build_spec(selections))
