"""Run comparison: the Labs' core feature."""

from __future__ import annotations

import pytest

from repro.errors import ComparisonError
from repro.labs.comparison import RunComparator
from tests.conftest import small_churn_spec


@pytest.fixture(scope="module")
def two_runs(compiler, runner):
    """Two churn runs with different analytics options."""
    quality_spec = small_churn_spec()
    quality_spec["goals"][0]["optimize_for"] = "quality"
    baseline_spec = small_churn_spec()
    baseline_spec["goals"][0]["model"] = "baseline"
    first = runner.run(compiler.compile(quality_spec), option_label="tree")
    second = runner.run(compiler.compile(baseline_spec), option_label="baseline")
    return first, second


class TestRunComparator:
    def test_needs_two_runs(self, two_runs):
        with pytest.raises(ComparisonError):
            RunComparator().compare([two_runs[0]])

    def test_labels_must_match_and_be_unique(self, two_runs):
        comparator = RunComparator()
        with pytest.raises(ComparisonError):
            comparator.compare(list(two_runs), labels=["only-one"])
        with pytest.raises(ComparisonError):
            comparator.compare(list(two_runs), labels=["same", "same"])
        with pytest.raises(ComparisonError):
            comparator.compare(list(two_runs), reference="not-a-label")

    def test_default_labels_from_option_labels(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        assert report.run_labels == ["tree", "baseline"]
        assert report.reference_label == "tree"

    def test_rows_cover_reported_metrics_only(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        assert "accuracy" in report.metric_keys
        assert "r2" not in report.metric_keys  # no regression goal in these runs

    def test_winner_respects_direction(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        assert report.row("accuracy").winner == "tree"
        assert report.row("accuracy").direction == "maximize"
        time_row = report.row("execution_time_s")
        assert time_row.direction == "minimize"
        best_time = min(value for value in time_row.values.values() if value is not None)
        if time_row.winner is not None:
            assert time_row.values[time_row.winner] == best_time

    def test_deltas_relative_to_reference(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        row = report.row("accuracy")
        assert row.deltas["tree"] == 0.0
        assert row.deltas["baseline"] == pytest.approx(
            row.values["baseline"] - row.values["tree"])

    def test_overall_winner_and_scores(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        assert report.overall_winner() in report.run_labels
        assert set(report.scores) == {"tree", "baseline"}

    def test_format_table_mentions_runs_and_metrics(self, two_runs):
        table = RunComparator().compare(list(two_runs)).format_table()
        assert "tree" in table
        assert "baseline" in table
        assert "accuracy" in table
        assert "*" in table  # winners are starred

    def test_as_dict_serialisable(self, two_runs):
        import json
        report = RunComparator().compare(list(two_runs))
        json.dumps(report.as_dict())

    def test_unknown_metric_row_raises(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        with pytest.raises(ComparisonError):
            report.row("nonexistent_metric")

    def test_custom_metric_selection(self, two_runs):
        report = RunComparator(metric_keys=("accuracy", "f1")).compare(list(two_runs))
        assert report.metric_keys == ["accuracy", "f1"]

    def test_tie_has_no_winner(self, two_runs):
        report = RunComparator(metric_keys=("records_processed",)) \
            .compare(list(two_runs))
        assert report.row("records_processed").winner is None

    def test_explicit_reference(self, two_runs):
        report = RunComparator().compare(list(two_runs), reference="baseline")
        assert report.reference_label == "baseline"
        assert report.row("accuracy").deltas["baseline"] == 0.0

    def test_option_signatures_included(self, two_runs):
        report = RunComparator().compare(list(two_runs))
        assert report.option_signatures["tree"]["churn"] == "classify_decision_tree"
        assert report.option_signatures["baseline"]["churn"] == \
            "classify_majority_baseline"
