"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from tests.conftest import small_churn_spec


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(small_churn_spec()), encoding="utf-8")
    return str(path)


class TestInformationalCommands:
    def test_catalog_lists_services(self, capsys):
        assert main(["catalog"]) == 0
        output = capsys.readouterr().out
        assert "classify_logistic_regression" in output
        assert "[analytics]" in output

    def test_challenges_lists_briefs(self, capsys):
        assert main(["challenges"]) == 0
        output = capsys.readouterr().out
        assert "churn-retention" in output
        assert "Design dimensions" in output

    def test_compile_shows_pipeline(self, capsys, spec_file):
        assert main(["compile", spec_file]) == 0
        output = capsys.readouterr().out
        assert "Procedural model" in output
        assert "ingest_scenario" in output

    def test_compile_missing_file(self, capsys):
        assert main(["compile", "/no/such/spec.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestRunCommand:
    def test_run_executes_and_reports_objectives(self, capsys, spec_file, tmp_path):
        output_path = str(tmp_path / "run.json")
        exit_code = main(["run", spec_file, "--output", output_path])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "hard objectives met: True" in output
        assert "accuracy" in output
        with open(output_path, encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["campaign"] == "test-churn"
        assert record["option_label"] == "cli"

    def test_run_returns_nonzero_when_objectives_missed(self, tmp_path, capsys):
        spec = small_churn_spec()
        spec["goals"][0]["objectives"] = [{"indicator": "accuracy", "target": 0.999}]
        path = tmp_path / "hard.json"
        path.write_text(json.dumps(spec), encoding="utf-8")
        assert main(["run", str(path)]) == 1
        assert "NOT met" in capsys.readouterr().out

    def test_run_invalid_spec_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}), encoding="utf-8")
        assert main(["run", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestChallengeCommand:
    def test_challenge_with_selection_and_score(self, capsys):
        exit_code = main(["challenge", "churn-retention",
                          "--select", "model=bayes",
                          "--select", "volume=recent", "--score"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "trial" in output
        assert "accuracy" in output
        assert "score:" in output

    def test_challenge_unknown_key(self, capsys):
        assert main(["challenge", "not-a-challenge"]) == 2
        assert "error" in capsys.readouterr().err

    def test_challenge_bad_selection_format(self, capsys):
        assert main(["challenge", "churn-retention", "--select", "model:tree"]) == 2
        assert "dimension=option" in capsys.readouterr().err

    def test_challenge_unknown_option_fails_gracefully(self, capsys):
        exit_code = main(["challenge", "churn-retention", "--select", "model=svm"])
        assert exit_code == 2
