"""The BDAaaS platform facade."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.errors import AuthorizationError, PlatformError, QuotaExceededError
from repro.platform.api import BDAaaSPlatform
from repro.platform.jobs import JobStatus
from tests.conftest import small_churn_spec


@pytest.fixture()
def trainee_setup(platform):
    """A trainee user plus their workspace."""
    user = platform.register_user("ada", role="trainee", organisation="acme")
    workspace = platform.create_workspace(user, "ada-sandbox")
    return user, workspace


class TestSubmission:
    def test_successful_submission_records_everything(self, platform, trainee_setup):
        user, workspace = trainee_setup
        job = platform.submit_campaign(user, workspace, small_churn_spec())
        assert job.status == JobStatus.SUCCEEDED
        assert job.run is not None
        assert job.run.indicator("accuracy") > 0.5
        # the workspace keeps both the spec and the run
        assert workspace.list_specs() == ["test-churn"]
        assert platform.runs_for(workspace) == [job.run]
        # quotas and audit were touched
        assert platform.users.remaining_jobs(user) == 9
        actions = [event.action for event in platform.audit.events]
        assert "campaign.submit" in actions
        assert "campaign.succeeded" in actions

    def test_run_campaign_returns_run_directly(self, platform, trainee_setup):
        user, workspace = trainee_setup
        run = platform.run_campaign(user, workspace, small_churn_spec(),
                                    option_label="direct")
        assert run.option_label == "direct"

    def test_compile_without_execution(self, platform):
        campaign = platform.compile_campaign(small_churn_spec())
        assert campaign.procedural.num_steps >= 4

    def test_failed_campaign_marks_job_failed(self, platform, trainee_setup):
        user, workspace = trainee_setup
        bad_spec = small_churn_spec()
        bad_spec["goals"][0]["params"]["label"] = "ghost_field"
        job = platform.submit_campaign(user, workspace, bad_spec)
        assert job.status == JobStatus.FAILED
        assert job.run is None
        assert "ghost_field" in job.error or "absent" in job.error
        with pytest.raises(PlatformError):
            platform.run_campaign(user, workspace, bad_spec)

    def test_failed_campaign_still_counts_against_quota(self, platform, trainee_setup):
        user, workspace = trainee_setup
        bad_spec = small_churn_spec()
        bad_spec["goals"][0]["params"]["label"] = "ghost_field"
        platform.submit_campaign(user, workspace, bad_spec)
        assert platform.users.remaining_jobs(user) == 9

    def test_clusters_released_after_execution(self, platform, trainee_setup):
        user, workspace = trainee_setup
        platform.submit_campaign(user, workspace, small_churn_spec())
        assert platform.provisioner.active_clusters == []
        assert len(platform.provisioner.released_clusters) == 1


class TestQuotaEnforcement:
    def test_row_quota_blocks_large_campaigns(self, platform, trainee_setup):
        user, workspace = trainee_setup
        huge = small_churn_spec(num_records=1_000_000)
        huge["source"]["num_records"] = 1_000_000
        with pytest.raises(QuotaExceededError):
            platform.submit_campaign(user, workspace, huge)

    def test_job_quota_exhausts(self, trainee_setup):
        platform = BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=2))
        user = platform.register_user("bob", role="trainee")
        workspace = platform.create_workspace(user, "w")
        platform.submit_campaign(user, workspace, small_churn_spec())
        platform.submit_campaign(user, workspace, small_churn_spec())
        with pytest.raises(QuotaExceededError):
            platform.submit_campaign(user, workspace, small_churn_spec())

    def test_worker_quota_blocks_big_requests(self, platform, trainee_setup):
        user, workspace = trainee_setup
        spec = small_churn_spec(deployment={"num_partitions": 4, "num_workers": 16})
        with pytest.raises(QuotaExceededError):
            platform.submit_campaign(user, workspace, spec)

    def test_analysts_are_not_quota_limited(self, platform):
        analyst = platform.register_user("carol", role="analyst")
        workspace = platform.create_workspace(analyst, "carol-space")
        spec = small_churn_spec(deployment={"num_partitions": 4, "num_workers": 8})
        job = platform.submit_campaign(analyst, workspace, spec)
        assert job.status == JobStatus.SUCCEEDED


class TestIntrospection:
    def test_catalogue_overview(self, platform):
        overview = platform.catalogue_overview()
        assert "classify_logistic_regression" in overview

    def test_job_statistics_aggregate(self, platform, trainee_setup):
        user, workspace = trainee_setup
        platform.submit_campaign(user, workspace, small_churn_spec())
        stats = platform.job_statistics()
        assert stats["submitted"] == 1
        assert stats["succeeded"] == 1

    def test_audit_is_ordered_and_gap_free(self, platform, trainee_setup):
        user, workspace = trainee_setup
        platform.submit_campaign(user, workspace, small_churn_spec())
        assert platform.audit.verify_sequence()

    def test_audit_can_be_disabled(self):
        platform = BDAaaSPlatform(PlatformConfig(audit_enabled=False))
        platform.register_user("quiet", role="trainee")
        assert len(platform.audit) == 0
