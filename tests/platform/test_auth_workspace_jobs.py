"""Platform building blocks: users/roles/quotas, workspaces, jobs, provisioning."""

from __future__ import annotations

import pytest

from repro.config import PlatformConfig
from repro.core.compiler import CampaignCompiler
from repro.errors import (AuthorizationError, JobError, ProvisioningError,
                          QuotaExceededError, WorkspaceError)
from repro.platform.auth import (PERMISSION_MANAGE_USERS, PERMISSION_SUBMIT,
                                 ROLE_ADMIN, ROLE_ANALYST, ROLE_TRAINEE, User,
                                 UserRegistry)
from repro.platform.jobs import JobManager, JobStatus
from repro.platform.provisioning import Provisioner
from repro.platform.workspace import WorkspaceManager
from tests.conftest import small_churn_spec


class TestUsersAndRoles:
    def test_unknown_role_rejected(self):
        with pytest.raises(AuthorizationError):
            User("u1", "x", role="superuser")

    def test_role_permissions(self):
        admin = User("u1", "root", role=ROLE_ADMIN)
        trainee = User("u2", "ada", role=ROLE_TRAINEE)
        assert admin.can(PERMISSION_MANAGE_USERS)
        assert trainee.can(PERMISSION_SUBMIT)
        assert not trainee.can(PERMISSION_MANAGE_USERS)

    def test_require_raises_for_missing_permission(self):
        trainee = User("u", "ada", role=ROLE_TRAINEE)
        with pytest.raises(AuthorizationError):
            trainee.require(PERMISSION_MANAGE_USERS)

    def test_free_tier_flag(self):
        assert User("u", "ada", role=ROLE_TRAINEE).is_free_tier
        assert not User("u", "bo", role=ROLE_ANALYST).is_free_tier

    def test_registry_register_and_lookup(self):
        registry = UserRegistry()
        user = registry.register("ada", ROLE_TRAINEE, organisation="acme")
        assert registry.get(user.user_id) is user
        assert registry.by_name("ada") is user
        assert len(registry.users) == 1

    def test_registry_unknown_lookups(self):
        registry = UserRegistry()
        with pytest.raises(AuthorizationError):
            registry.get("u999")
        with pytest.raises(AuthorizationError):
            registry.by_name("nobody")


class TestQuotas:
    def _registry(self):
        return UserRegistry(PlatformConfig(free_tier_max_jobs=2,
                                           free_tier_max_rows=1000,
                                           free_tier_max_workers=2))

    def test_job_quota_enforced_for_trainees(self):
        registry = self._registry()
        trainee = registry.register("ada", ROLE_TRAINEE)
        registry.record_job(trainee)
        registry.record_job(trainee)
        with pytest.raises(QuotaExceededError):
            registry.check_job_quota(trainee)
        assert registry.remaining_jobs(trainee) == 0

    def test_job_quota_not_applied_to_analysts(self):
        registry = self._registry()
        analyst = registry.register("bo", ROLE_ANALYST)
        for _ in range(5):
            registry.record_job(analyst)
        registry.check_job_quota(analyst)
        assert registry.remaining_jobs(analyst) is None

    def test_data_quota(self):
        registry = self._registry()
        trainee = registry.register("ada", ROLE_TRAINEE)
        registry.check_data_quota(trainee, 1000)
        with pytest.raises(QuotaExceededError):
            registry.check_data_quota(trainee, 5000)

    def test_cluster_quota(self):
        registry = self._registry()
        trainee = registry.register("ada", ROLE_TRAINEE)
        registry.check_cluster_quota(trainee, 2)
        with pytest.raises(QuotaExceededError):
            registry.check_cluster_quota(trainee, 8)


class TestWorkspaces:
    def test_create_and_lookup(self):
        manager = WorkspaceManager()
        workspace = manager.create("w", "owner-1")
        assert manager.get(workspace.workspace_id) is workspace
        assert manager.for_owner("owner-1") == [workspace]
        assert len(manager) == 1

    def test_duplicate_name_per_owner_rejected(self):
        manager = WorkspaceManager()
        manager.create("w", "owner-1")
        with pytest.raises(WorkspaceError):
            manager.create("w", "owner-1")
        manager.create("w", "owner-2")  # other owners may reuse the name

    def test_unknown_workspace(self):
        manager = WorkspaceManager()
        with pytest.raises(WorkspaceError):
            manager.get("w999")

    def test_delete(self):
        manager = WorkspaceManager()
        workspace = manager.create("w", "o")
        manager.delete(workspace.workspace_id)
        assert len(manager) == 0
        with pytest.raises(WorkspaceError):
            manager.delete(workspace.workspace_id)

    def test_spec_storage(self):
        manager = WorkspaceManager()
        workspace = manager.create("w", "o")
        workspace.save_spec("churn", {"name": "churn"})
        assert workspace.get_spec("churn") == {"name": "churn"}
        assert workspace.list_specs() == ["churn"]
        with pytest.raises(WorkspaceError):
            workspace.get_spec("missing")

    def test_run_history(self, churn_run):
        manager = WorkspaceManager()
        workspace = manager.create("w", "o")
        workspace.record_run(churn_run)
        assert workspace.run_history() == [churn_run]
        assert workspace.run_history("test-churn") == [churn_run]
        assert workspace.run_history("other") == []
        assert workspace.latest_run() is churn_run
        assert manager.create("empty", "o").latest_run() is None


class TestJobManager:
    def test_lifecycle_success(self):
        manager = JobManager()
        job = manager.submit("churn", "u1", "w1")
        assert job.status == JobStatus.PENDING
        manager.mark_running(job.job_id)
        manager.mark_succeeded(job.job_id, run="the-run")
        refreshed = manager.get(job.job_id)
        assert refreshed.status == JobStatus.SUCCEEDED
        assert refreshed.run == "the-run"
        assert refreshed.is_terminal
        assert refreshed.run_time_s >= 0

    def test_lifecycle_failure(self):
        manager = JobManager()
        job = manager.submit("churn", "u1", "w1")
        manager.mark_running(job.job_id)
        manager.mark_failed(job.job_id, "boom")
        assert manager.get(job.job_id).status == JobStatus.FAILED
        assert manager.get(job.job_id).error == "boom"

    def test_cancel(self):
        manager = JobManager()
        job = manager.submit("churn", "u1", "w1")
        manager.cancel(job.job_id)
        assert manager.get(job.job_id).status == JobStatus.CANCELLED

    def test_invalid_transitions(self):
        manager = JobManager()
        job = manager.submit("churn", "u1", "w1")
        with pytest.raises(JobError):
            manager.mark_succeeded(job.job_id, run=None)  # not running yet
        manager.mark_running(job.job_id)
        manager.mark_succeeded(job.job_id, run=None)
        with pytest.raises(JobError):
            manager.mark_failed(job.job_id, "late error")
        with pytest.raises(JobError):
            manager.cancel(job.job_id)

    def test_unknown_job(self):
        with pytest.raises(JobError):
            JobManager().get("job-404")

    def test_filters_and_statistics(self):
        manager = JobManager()
        first = manager.submit("a", "u1", "w1")
        second = manager.submit("b", "u2", "w2")
        manager.mark_running(first.job_id)
        manager.mark_succeeded(first.job_id, run=None)
        assert len(manager.jobs(owner_id="u1")) == 1
        assert len(manager.jobs(status=JobStatus.PENDING)) == 1
        stats = manager.statistics()
        assert stats["submitted"] == 2
        assert stats["succeeded"] == 1
        assert stats["mean_run_time_s"] >= 0

    def test_job_serialisation(self):
        manager = JobManager()
        job = manager.submit("a", "u1", "w1", option_label="opt")
        as_dict = job.as_dict()
        assert as_dict["campaign"] == "a"
        assert as_dict["option_label"] == "opt"


class TestProvisioner:
    def _deployment(self, **deployment_prefs):
        compiler = CampaignCompiler()
        return compiler.compile(small_churn_spec(
            deployment={"num_partitions": 2, **deployment_prefs})).deployment

    def test_provision_and_release(self):
        provisioner = Provisioner()
        cluster = provisioner.provision(self._deployment())
        assert cluster.is_active
        assert provisioner.active_clusters == [cluster]
        provisioner.release(cluster)
        assert not cluster.is_active
        assert provisioner.released_clusters == [cluster]
        with pytest.raises(ProvisioningError):
            provisioner.release(cluster)

    def test_worker_cap_shrinks_engine_config(self):
        provisioner = Provisioner()
        cluster = provisioner.provision(self._deployment(num_workers=8), max_workers=2)
        assert cluster.engine_config.num_workers == 2

    def test_large_profile_rejected_for_capped_users(self):
        provisioner = Provisioner()
        deployment = self._deployment(cluster_profile="large-16")
        with pytest.raises(ProvisioningError):
            provisioner.provision(deployment, max_workers=4)

    def test_available_profiles_filtered_by_cap(self):
        provisioner = Provisioner()
        unrestricted = provisioner.available_profiles()
        capped = provisioner.available_profiles(max_workers=4)
        assert "large-16" in unrestricted
        assert "large-16" not in capped
        assert "local" in capped

    def test_uptime_tracked(self):
        provisioner = Provisioner()
        cluster = provisioner.provision(self._deployment())
        assert cluster.uptime_s >= 0
        provisioner.release(cluster)
        assert cluster.uptime_s >= 0
