"""The declarative→procedural→deployment compiler chain."""

from __future__ import annotations

import pytest

from repro.core.compiler import (CampaignCompiler, DeclarativeToProcedural,
                                 ProceduralToDeployment)
from repro.core.dsl import parse_spec
from repro.errors import CompilationError, CompositionError, DeploymentError
from tests.conftest import small_churn_spec


class TestDeclarativeToProcedural:
    def test_basic_pipeline_shape(self, compiler):
        campaign = compiler.compile(small_churn_spec())
        services = campaign.procedural.service_names()
        assert services[0] == "ingest_scenario"
        assert "prepare_split" in services            # supervised goal
        assert "display_report" in services
        assert "display_dashboard" in services
        assert campaign.procedural.analytics_steps[0].goal_id == "churn"

    def test_policy_inserts_anonymization(self, compiler):
        spec = small_churn_spec(policy="gdpr_baseline")
        campaign = compiler.compile(spec)
        services = campaign.procedural.service_names()
        assert "prepare_anonymize" in services
        protect = campaign.procedural.step("protect")
        assert protect.params["k"] == 5  # the GDPR baseline minimum

    def test_open_data_policy_skips_anonymization(self, compiler):
        campaign = compiler.compile(small_churn_spec(policy="open_data"))
        assert "prepare_anonymize" not in campaign.procedural.service_names()

    def test_user_privacy_request_honoured_even_without_policy(self, compiler):
        spec = small_churn_spec(policy="open_data", privacy={"k_anonymity": 7})
        campaign = compiler.compile(spec)
        assert campaign.procedural.step("protect").params["k"] == 7

    def test_strongest_k_wins(self, compiler):
        spec = small_churn_spec(policy="gdpr_baseline", privacy={"k_anonymity": 12})
        campaign = compiler.compile(spec)
        assert campaign.procedural.step("protect").params["k"] == 12

    def test_unknown_policy_rejected(self, compiler):
        with pytest.raises(CompilationError):
            compiler.compile(small_churn_spec(policy="non_existent_policy"))

    def test_preparation_requests_become_steps(self, compiler):
        spec = small_churn_spec(preparation={
            "normalize": ["monthly_charges"],
            "impute": ["total_charges"],
            "deduplicate": True,
            "filters": [{"field": "age", "operator": ">=", "value": 18}],
        })
        campaign = compiler.compile(spec)
        services = campaign.procedural.service_names()
        for expected in ("prepare_normalize", "prepare_impute", "prepare_dedup",
                         "prepare_filter"):
            assert expected in services

    def test_unsupervised_goal_gets_no_split(self, compiler):
        spec = small_churn_spec()
        spec["goals"] = [{"id": "seg", "task": "clustering",
                          "params": {"features": ["age"], "k": 2}}]
        campaign = compiler.compile(spec)
        assert "prepare_split" not in campaign.procedural.service_names()

    def test_quality_preference_picks_most_sophisticated(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["optimize_for"] = "quality"
        campaign = compiler.compile(spec)
        assert campaign.option_signature()["churn"] == "classify_decision_tree"

    def test_cost_preference_picks_cheapest_non_baseline(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["optimize_for"] = "cost"
        campaign = compiler.compile(spec)
        assert campaign.option_signature()["churn"] == "classify_naive_bayes"

    def test_interpretability_preference_prefers_rules(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["optimize_for"] = "interpretability"
        campaign = compiler.compile(spec)
        assert campaign.option_signature()["churn"] == "classify_decision_tree"

    def test_preferred_model_forces_selection(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["model"] = "baseline"
        campaign = compiler.compile(spec)
        assert campaign.option_signature()["churn"] == "classify_majority_baseline"

    def test_unknown_model_fails_composition(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["model"] = "quantum_forest"
        with pytest.raises(CompositionError):
            compiler.compile(spec)

    def test_streaming_source_requires_streaming_capable_service(self, compiler):
        spec = small_churn_spec()
        spec["source"]["streaming"] = True
        # classification does not support streaming
        with pytest.raises(CompositionError):
            compiler.compile(spec)

    def test_streaming_anomaly_detection_composes(self, compiler):
        spec = {
            "name": "stream-anomaly",
            "source": {"scenario": "energy", "num_records": 2000, "streaming": True,
                       "batch_size": 250},
            "goals": [{"id": "detect", "task": "anomaly_detection",
                       "params": {"value_field": "kwh", "label_field": "is_anomaly"}}],
        }
        campaign = compiler.compile(spec)
        assert campaign.deployment.streaming
        assert campaign.option_signature()["detect"].startswith("detect_anomalies")

    def test_goal_params_filtered_to_service_parameters(self, compiler):
        spec = small_churn_spec()
        spec["goals"][0]["params"]["irrelevant_setting"] = 42
        campaign = compiler.compile(spec)
        analytics = campaign.procedural.analytics_steps[0]
        assert "irrelevant_setting" not in analytics.params

    def test_multiple_goals_share_preparation_chain(self, compiler):
        spec = small_churn_spec()
        spec["goals"].append({"id": "segments", "task": "clustering",
                              "params": {"features": ["age"], "k": 3}})
        campaign = compiler.compile(spec)
        analytics = campaign.procedural.analytics_steps
        assert len(analytics) == 2
        assert analytics[0].depends_on == analytics[1].depends_on

    def test_export_table_step_only_when_requested_and_allowed(self, compiler):
        spec = small_churn_spec(deployment={"num_partitions": 2, "export_table": True})
        assert "display_table" in compiler.compile(spec).procedural.service_names()
        health_spec = {
            "name": "h", "policy": "health_strict", "purpose": "research",
            "source": {"scenario": "patients", "num_records": 1000},
            "deployment": {"export_table": True},
            "goals": [{"id": "g", "task": "descriptive", "params": {"fields": ["age"]}}],
        }
        assert "display_table" not in \
            compiler.compile(health_spec).procedural.service_names()

    def test_csv_and_records_sources(self, compiler, tmp_path, churn_records):
        from repro.data.schemas import CHURN_SCHEMA
        from repro.data.sources import write_csv
        path = str(tmp_path / "c.csv")
        write_csv(path, churn_records[:20], CHURN_SCHEMA)
        csv_spec = small_churn_spec()
        csv_spec["source"] = {"csv_path": path}
        assert compiler.compile(csv_spec).procedural.step("ingest").service_name == \
            "ingest_csv"
        records_spec = small_churn_spec()
        records_spec["source"] = {"records": [{"v": 1}]}
        assert compiler.compile(records_spec).procedural.step("ingest").service_name == \
            "ingest_records"


class TestProceduralToDeployment:
    def test_defaults_derived_from_data_size(self, compiler):
        declarative = parse_spec(small_churn_spec())
        procedural = DeclarativeToProcedural(compiler.catalog).compile(declarative)
        spec_no_prefs = small_churn_spec()
        spec_no_prefs.pop("deployment")
        declarative2 = parse_spec(spec_no_prefs)
        deployment = ProceduralToDeployment().compile(procedural, declarative2)
        assert deployment.num_partitions == 2  # 1500 records -> minimum partitions
        assert deployment.engine_config.num_workers <= 4
        assert not deployment.streaming

    def test_partition_heuristic_scales_with_records(self):
        assert ProceduralToDeployment._default_partitions(1_000) == 2
        assert ProceduralToDeployment._default_partitions(25_000) == 10
        assert ProceduralToDeployment._default_partitions(10_000_000) == 16

    def test_preferences_respected(self, compiler):
        spec = small_churn_spec(deployment={"cluster_profile": "small-4",
                                            "num_partitions": 6, "num_workers": 3,
                                            "failure_rate": 0.1})
        campaign = compiler.compile(spec)
        deployment = campaign.deployment
        assert deployment.cluster_profile_name == "small-4"
        assert deployment.num_partitions == 6
        assert deployment.engine_config.num_workers == 3
        assert deployment.engine_config.failure_rate == 0.1

    def test_unknown_cluster_profile_rejected(self, compiler):
        spec = small_churn_spec(deployment={"cluster_profile": "mega-cluster"})
        with pytest.raises(DeploymentError):
            compiler.compile(spec)

    def test_streaming_deployment_defaults_max_batches(self, compiler):
        spec = {
            "name": "s", "source": {"scenario": "energy", "num_records": 1000,
                                    "streaming": True, "batch_size": 100},
            "goals": [{"id": "d", "task": "anomaly_detection",
                       "params": {"value_field": "kwh"}}],
        }
        deployment = compiler.compile(spec).deployment
        assert deployment.streaming
        assert deployment.max_batches == 10

    def test_deployment_describe_and_dict(self, compiler):
        campaign = compiler.compile(small_churn_spec())
        text = campaign.deployment.describe()
        assert "cluster profile" in text
        as_dict = campaign.deployment.as_dict()
        assert as_dict["cluster_profile"] == "local"
        assert as_dict["num_partitions"] == 2


class TestCampaignCompilerFacade:
    def test_compile_returns_all_three_models(self, compiler):
        campaign = compiler.compile(small_churn_spec())
        assert campaign.declarative.name == campaign.procedural.name == "test-churn"
        assert campaign.deployment.procedural is campaign.procedural
        assert campaign.name == "test-churn"

    def test_describe_mentions_goals_and_policy(self, compiler):
        description = compiler.compile(small_churn_spec()).describe()
        assert "churn" in description
        assert "open_data" in description

    def test_compile_accepts_json_string(self, compiler):
        import json
        campaign = compiler.compile(json.dumps(small_churn_spec()))
        assert campaign.name == "test-churn"
