"""Service catalogue and procedural model (composition DAG)."""

from __future__ import annotations

import pytest

from repro.core.catalog import ServiceCatalog, build_default_catalog
from repro.core.procedural import ProceduralModel, ServiceStep
from repro.errors import CompilationError, CompositionError, ServiceConfigurationError
from repro.services.analytics.classification import LogisticRegressionService
from repro.services.base import AREA_ANALYTICS


class TestServiceCatalog:
    def test_default_catalog_is_populated(self, default_catalog):
        assert len(default_catalog) >= 25
        assert "classify_logistic_regression" in default_catalog
        assert "prepare_anonymize" in default_catalog
        assert "display_report" in default_catalog

    def test_areas_all_covered(self, default_catalog):
        for area in ("ingestion", "preparation", "analytics", "display"):
            assert default_catalog.by_area(area)

    def test_every_declarative_task_has_a_service(self, default_catalog):
        from repro.core.declarative import VALID_TASKS
        for task in VALID_TASKS:
            assert default_catalog.find_for_task(task), f"no service for {task}"

    def test_capability_query(self, default_catalog):
        classifiers = default_catalog.with_capability("task:classification")
        assert len(classifiers) == 4
        assert all(metadata.area == AREA_ANALYTICS for metadata in classifiers)

    def test_get_unknown_service(self, default_catalog):
        with pytest.raises(CompositionError):
            default_catalog.get("not_a_service")

    def test_instantiate_with_params(self, default_catalog):
        service = default_catalog.instantiate("classify_logistic_regression",
                                               label="y", features=["x"])
        assert isinstance(service, LogisticRegressionService)
        assert service.params["label"] == "y"

    def test_register_rejects_class_without_metadata(self):
        catalog = ServiceCatalog()
        class NotAService:
            metadata = None
        with pytest.raises(ServiceConfigurationError):
            catalog.register(NotAService)

    def test_register_custom_service(self):
        catalog = build_default_catalog()
        class CustomService(LogisticRegressionService):
            metadata = LogisticRegressionService.metadata.__class__(
                name="custom_classifier", area=AREA_ANALYTICS,
                capabilities=("task:classification", "model:custom"),
                parameters=LogisticRegressionService.metadata.parameters)
        catalog.register(CustomService)
        assert "custom_classifier" in catalog
        assert any(metadata.name == "custom_classifier"
                   for metadata in catalog.find_for_task("classification"))

    def test_describe_lists_every_area(self, default_catalog):
        description = default_catalog.describe()
        for area in ("ingestion", "preparation", "analytics", "display"):
            assert f"[{area}]" in description


class TestProceduralModel:
    def _steps(self):
        return [
            ServiceStep("ingest", "ingest_scenario", "ingestion"),
            ServiceStep("prepare", "prepare_split", "preparation", depends_on=("ingest",)),
            ServiceStep("analyze", "classify_naive_bayes", "analytics",
                        depends_on=("prepare",), goal_id="g"),
            ServiceStep("report", "display_report", "display", depends_on=("analyze",)),
        ]

    def test_valid_model_topological_order(self):
        model = ProceduralModel("m", self._steps())
        order = [step.step_id for step in model.topological_order()]
        assert order.index("ingest") < order.index("prepare") < order.index("analyze")

    def test_duplicate_step_ids_rejected(self):
        steps = self._steps() + [ServiceStep("ingest", "ingest_csv", "ingestion")]
        with pytest.raises(CompilationError):
            ProceduralModel("m", steps)

    def test_unknown_dependency_rejected(self):
        steps = [ServiceStep("a", "x", "analytics", depends_on=("ghost",))]
        with pytest.raises(CompilationError):
            ProceduralModel("m", steps)

    def test_cycle_detected(self):
        steps = [ServiceStep("a", "x", "analytics", depends_on=("b",)),
                 ServiceStep("b", "y", "analytics", depends_on=("a",))]
        with pytest.raises(CompilationError):
            ProceduralModel("m", steps)

    def test_step_lookup(self):
        model = ProceduralModel("m", self._steps())
        assert model.step("analyze").goal_id == "g"
        with pytest.raises(CompilationError):
            model.step("missing")

    def test_area_queries(self):
        model = ProceduralModel("m", self._steps())
        assert [step.step_id for step in model.analytics_steps] == ["analyze"]
        assert len(model.steps_in_area("preparation")) == 1
        assert model.num_steps == 4

    def test_capabilities_aggregated_from_catalog(self, default_catalog):
        model = ProceduralModel("m", self._steps())
        capabilities = model.capabilities(default_catalog)
        assert "task:classification" in capabilities
        assert "display:report" in capabilities

    def test_describe_and_as_dict(self):
        model = ProceduralModel("m", self._steps())
        text = model.describe()
        assert "classify_naive_bayes" in text
        as_dict = model.as_dict()
        assert as_dict["name"] == "m"
        assert len(as_dict["steps"]) == 4

    def test_as_dict_hides_complex_parameter_values(self):
        step = ServiceStep("s", "ingest_source", "ingestion",
                           params={"source": object(), "n": 3})
        as_dict = step.as_dict()
        assert as_dict["params"]["source"] == "<object>"
        assert as_dict["params"]["n"] == 3

    def test_service_names_in_order(self):
        model = ProceduralModel("m", self._steps())
        assert model.service_names()[0] == "ingest_scenario"
