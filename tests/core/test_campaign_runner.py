"""Campaign execution: batch runs, streaming runs, indicators, compliance."""

from __future__ import annotations

import pytest

from repro.core.campaign import CampaignRunner
from repro.errors import ServiceExecutionError
from repro.governance.audit import AuditLog
from tests.conftest import small_churn_spec


class TestBatchRun:
    def test_run_produces_indicator_values(self, churn_run):
        assert churn_run.succeeded
        assert churn_run.indicator("accuracy") > 0.5
        assert churn_run.indicator("records_processed") == 1500
        assert churn_run.indicator("execution_time_s") > 0
        assert churn_run.indicator("num_tasks") > 0

    def test_objectives_evaluated(self, churn_run):
        assert len(churn_run.objective_evaluations) == 1
        evaluation = churn_run.objective_evaluations[0]
        assert evaluation.objective.indicator_name == "accuracy"
        assert evaluation.satisfied
        assert churn_run.satisfied_all_hard_objectives
        assert churn_run.weighted_score > 0.9

    def test_step_metrics_namespaced(self, churn_run):
        assert "ingest" in churn_run.step_metrics
        assert "analytics-churn" in churn_run.step_metrics
        assert "analytics-churn.accuracy" in churn_run.indicator_values

    def test_artifacts_exclude_datasets(self, churn_run):
        from repro.engine.dataset import Dataset
        for artifacts in churn_run.artifacts.values():
            assert not any(isinstance(value, Dataset) for value in artifacts.values())

    def test_report_artifact_present(self, churn_run):
        assert "report" in churn_run.artifacts["report"]
        assert "Campaign report" in churn_run.artifacts["report"]["report"]

    def test_deployment_estimates_cover_declared_profile(self, churn_run):
        profiles = {estimate["profile"] for estimate in churn_run.deployment_estimates}
        assert "local" in profiles
        assert "large-16" in profiles
        assert churn_run.indicator("estimated_cost_usd") is not None

    def test_compliance_attached(self, churn_run):
        assert churn_run.compliance["policy"] == "open_data"
        assert churn_run.compliance["compliant"] is True
        assert churn_run.indicator("policy_violations") == 0

    def test_run_serialisation(self, churn_run):
        import json
        as_dict = churn_run.as_dict()
        assert as_dict["campaign"] == "test-churn"
        assert as_dict["option_signature"]["churn"] == "classify_naive_bayes"
        json.dumps(as_dict)  # everything must be JSON-serialisable

    def test_option_label_recorded(self, churn_run):
        assert churn_run.option_label == "shared"

    def test_duration_positive(self, churn_run):
        assert churn_run.duration_s > 0

    def test_failing_objective_reported_not_raised(self, compiler, runner):
        spec = small_churn_spec()
        spec["goals"][0]["objectives"] = [{"indicator": "accuracy", "target": 0.999}]
        run = runner.run(compiler.compile(spec))
        assert not run.satisfied_all_hard_objectives
        assert run.objective_summary["hard_objectives_met"] == 0.0

    def test_gdpr_campaign_measures_achieved_k(self, compiler, runner):
        spec = small_churn_spec(policy="gdpr_baseline", num_records=1200)
        run = runner.run(compiler.compile(spec))
        assert run.indicator("achieved_k") >= 5
        assert run.compliance["compliant"] is True

    def test_audit_log_records_lifecycle(self, compiler, default_catalog):
        audit = AuditLog()
        runner = CampaignRunner(default_catalog, audit_log=audit)
        runner.run(compiler.compile(small_churn_spec()), actor="tester")
        actions = [event.action for event in audit.events]
        assert "campaign.start" in actions
        assert "campaign.finish" in actions
        assert any(event.actor == "tester" for event in audit.events)

    def test_failing_step_raises_service_execution_error(self, compiler, runner):
        spec = small_churn_spec()
        spec["goals"][0]["params"]["label"] = "not_a_field"
        with pytest.raises(ServiceExecutionError):
            runner.run(compiler.compile(spec))

    def test_failure_is_audited(self, compiler, default_catalog):
        audit = AuditLog()
        runner = CampaignRunner(default_catalog, audit_log=audit)
        spec = small_churn_spec()
        spec["goals"][0]["params"]["label"] = "not_a_field"
        with pytest.raises(ServiceExecutionError):
            runner.run(compiler.compile(spec))
        assert any(event.action == "campaign.error" for event in audit.events)

    def test_multi_goal_campaign(self, compiler, runner):
        spec = small_churn_spec()
        spec["goals"].append({"id": "segments", "task": "clustering",
                              "params": {"features": ["monthly_charges"], "k": 2},
                              "optimize_for": "cost"})
        run = runner.run(compiler.compile(spec))
        assert run.indicator("analytics-segments.inertia") is not None
        assert run.indicator("analytics-churn.accuracy") is not None
        assert run.option_signature == {"churn": "classify_naive_bayes",
                                        "segments": "cluster_kmeans"}


class TestStreamingRun:
    @pytest.fixture(scope="class")
    def streaming_run(self, compiler, runner):
        spec = {
            "name": "stream-anomaly",
            "source": {"scenario": "energy", "num_records": 1500, "streaming": True,
                       "batch_size": 300},
            "deployment": {"num_partitions": 2, "num_workers": 1, "max_batches": 4},
            "goals": [{"id": "detect", "task": "anomaly_detection",
                       "params": {"value_field": "kwh", "label_field": "is_anomaly",
                                  "z_threshold": 2.5},
                       "objectives": [{"indicator": "latency", "target": 30.0}]}],
        }
        return runner.run(compiler.compile(spec), option_label="stream")

    def test_stream_metrics_present(self, streaming_run):
        assert streaming_run.indicator("num_batches") == 4
        assert streaming_run.indicator("total_input_records") == 1200
        assert streaming_run.indicator("mean_latency_s") > 0
        assert streaming_run.indicator("throughput_records_per_s") > 0

    def test_latency_objective_evaluated(self, streaming_run):
        evaluation = streaming_run.objective_evaluations[0]
        assert evaluation.objective.indicator_name == "latency"
        assert evaluation.satisfied

    def test_analytics_metrics_from_last_batch(self, streaming_run):
        assert streaming_run.indicator("anomalies_flagged") is not None
        assert streaming_run.indicator("records_scanned") == 300

    def test_streaming_empty_source_fails_cleanly(self, compiler, runner):
        from repro.errors import ReproError
        spec = {
            "name": "empty-stream",
            "source": {"records": [], "streaming": True, "batch_size": 10},
            "goals": [{"id": "d", "task": "descriptive", "params": {"fields": ["v"]}}],
        }
        with pytest.raises(ReproError):
            runner.run(compiler.compile(spec))
