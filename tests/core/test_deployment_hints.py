"""Deployment layer -> engine optimizer hint threading."""

from __future__ import annotations

from repro.config import KNOWN_OPTIMIZER_RULES
from repro.core.compiler import CampaignCompiler


def _spec(**deployment):
    return {
        "name": "hints",
        "policy": "open_data",
        "source": {"scenario": "churn", "num_records": 2000},
        "deployment": deployment,
        "goals": [{
            "id": "g",
            "task": "descriptive",
            "params": {"fields": ["monthly_charges"]},
        }],
    }


class TestOptimizerHints:
    def test_default_deployment_enables_every_rule(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        deployment = campaign.deployment
        assert deployment.engine_config.optimizer_rules == KNOWN_OPTIMIZER_RULES
        hints = deployment.optimizer_hints
        assert hints["target_partitions"] == deployment.num_partitions == 4
        assert hints["map_side_combine"] is True
        assert hints["micro_batch_records"] is None

    def test_map_side_combine_toggle(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, map_side_combine=False))
        rules = campaign.deployment.engine_config.optimizer_rules
        assert "map_side_combine" not in rules
        assert "fuse_narrow" in rules
        assert campaign.deployment.optimizer_hints["map_side_combine"] is False

    def test_optimizer_disabled_entirely(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4, optimizer=False))
        assert campaign.deployment.engine_config.optimizer_rules == ()
        assert campaign.deployment.optimizer_hints["optimizer_rules"] == []

    def test_explicit_rule_subset(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, optimizer_rules=["fuse_narrow", "pushdown"]))
        assert campaign.deployment.engine_config.optimizer_rules == \
            ("fuse_narrow", "pushdown")

    def test_streaming_deployment_emits_micro_batch_hint(self):
        spec = _spec(num_partitions=2)
        spec["source"]["streaming"] = True
        spec["source"]["batch_size"] = 250
        campaign = CampaignCompiler().compile(spec)
        assert campaign.deployment.optimizer_hints["micro_batch_records"] == 250

    def test_hints_serialised_in_as_dict(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        payload = campaign.deployment.as_dict()
        assert payload["optimizer_hints"]["target_partitions"] == 4

    def test_hints_shown_in_describe(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        assert "optimizer:" in campaign.deployment.describe()
