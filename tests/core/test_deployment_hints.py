"""Deployment layer -> engine optimizer hint threading."""

from __future__ import annotations

import pytest

from repro.config import KNOWN_OPTIMIZER_RULES, EngineConfig
from repro.core.compiler import CampaignCompiler
from repro.errors import ConfigurationError


def _spec(**deployment):
    return {
        "name": "hints",
        "policy": "open_data",
        "source": {"scenario": "churn", "num_records": 2000},
        "deployment": deployment,
        "goals": [{
            "id": "g",
            "task": "descriptive",
            "params": {"fields": ["monthly_charges"]},
        }],
    }


class TestOptimizerHints:
    def test_default_deployment_enables_every_rule(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        deployment = campaign.deployment
        assert deployment.engine_config.optimizer_rules == KNOWN_OPTIMIZER_RULES
        hints = deployment.optimizer_hints
        assert hints["target_partitions"] == deployment.num_partitions == 4
        assert hints["map_side_combine"] is True
        assert hints["micro_batch_records"] is None

    def test_map_side_combine_toggle(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, map_side_combine=False))
        rules = campaign.deployment.engine_config.optimizer_rules
        assert "map_side_combine" not in rules
        assert "fuse_narrow" in rules
        assert campaign.deployment.optimizer_hints["map_side_combine"] is False

    def test_optimizer_disabled_entirely(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4, optimizer=False))
        assert campaign.deployment.engine_config.optimizer_rules == ()
        assert campaign.deployment.optimizer_hints["optimizer_rules"] == []

    def test_explicit_rule_subset(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, optimizer_rules=["fuse_narrow", "pushdown"]))
        assert campaign.deployment.engine_config.optimizer_rules == \
            ("fuse_narrow", "pushdown")

    def test_streaming_deployment_emits_micro_batch_hint(self):
        spec = _spec(num_partitions=2)
        spec["source"]["streaming"] = True
        spec["source"]["batch_size"] = 250
        campaign = CampaignCompiler().compile(spec)
        assert campaign.deployment.optimizer_hints["micro_batch_records"] == 250

    def test_default_cost_model_thresholds(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        config = campaign.deployment.engine_config
        assert config.broadcast_threshold_bytes == \
            EngineConfig.broadcast_threshold_bytes
        assert config.target_partition_bytes == 0
        assert config.adaptive_enabled is True
        hints = campaign.deployment.optimizer_hints
        assert hints["broadcast_threshold_bytes"] == \
            config.broadcast_threshold_bytes
        assert hints["target_partition_bytes"] == 0
        assert hints["adaptive"] is True

    def test_cost_model_thresholds_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, broadcast_threshold_bytes=123_456,
                  target_partition_bytes=65_536, adaptive=False))
        config = campaign.deployment.engine_config
        assert config.broadcast_threshold_bytes == 123_456
        assert config.target_partition_bytes == 65_536
        assert config.adaptive_enabled is False
        hints = campaign.deployment.optimizer_hints
        assert hints["broadcast_threshold_bytes"] == 123_456
        assert hints["target_partition_bytes"] == 65_536
        assert hints["adaptive"] is False

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(
                _spec(num_partitions=4, broadcast_threshold_bytes=-1))
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(
                _spec(num_partitions=4, target_partition_bytes=-5))

    def test_default_engine_batch_size_hint(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        config = campaign.deployment.engine_config
        assert config.batch_size == EngineConfig.batch_size
        assert campaign.deployment.optimizer_hints["batch_size"] == \
            config.batch_size

    def test_engine_batch_size_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, batch_size=256))
        assert campaign.deployment.engine_config.batch_size == 256
        assert campaign.deployment.optimizer_hints["batch_size"] == 256
        assert "256-record batches" in campaign.deployment.describe()

    def test_engine_batching_disabled_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, batch_size=0))
        assert campaign.deployment.engine_config.batch_size == 0
        assert "record-at-a-time" in campaign.deployment.describe()

    def test_negative_engine_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(_spec(num_partitions=4, batch_size=-8))

    def test_broadcast_threshold_shown_in_describe(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, broadcast_threshold_bytes=2048))
        assert "broadcast threshold: 2048 bytes" in campaign.deployment.describe()

    def test_hints_serialised_in_as_dict(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        payload = campaign.deployment.as_dict()
        assert payload["optimizer_hints"]["target_partitions"] == 4

    def test_hints_shown_in_describe(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        assert "optimizer:" in campaign.deployment.describe()

    def test_skew_split_hints_default(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        config = campaign.deployment.engine_config
        hints = campaign.deployment.optimizer_hints
        assert config.skew_split_factor == EngineConfig.skew_split_factor
        assert hints["skew_split_factor"] == config.skew_split_factor
        assert hints["skew_min_partition_bytes"] == \
            config.skew_min_partition_bytes

    def test_skew_split_factor_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, skew_split_factor=8,
                  skew_min_partition_bytes=4096))
        config = campaign.deployment.engine_config
        assert config.skew_split_factor == 8
        assert config.skew_min_partition_bytes == 4096
        assert campaign.deployment.optimizer_hints["skew_split_factor"] == 8
        assert "up to 8 sub-reads" in campaign.deployment.describe()

    def test_skew_split_disabled_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, skew_split_factor=0))
        assert campaign.deployment.engine_config.skew_split_factor == 0
        assert "skew splitting: off" in campaign.deployment.describe()

    def test_negative_skew_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(
                _spec(num_partitions=4, skew_split_factor=-1))
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(
                _spec(num_partitions=4, skew_min_partition_bytes=-1))

    def test_executor_backend_default_hint(self):
        campaign = CampaignCompiler().compile(_spec(num_partitions=4))
        config = campaign.deployment.engine_config
        assert config.executor_backend == "thread"
        assert campaign.deployment.optimizer_hints["executor_backend"] == \
            "thread"
        assert "executor backend: thread" in campaign.deployment.describe()

    def test_executor_backend_from_spec(self):
        campaign = CampaignCompiler().compile(
            _spec(num_partitions=4, executor_backend="process",
                  num_workers=3))
        config = campaign.deployment.engine_config
        assert config.executor_backend == "process"
        assert config.num_workers == 3
        assert campaign.deployment.optimizer_hints["executor_backend"] == \
            "process"
        assert "executor backend: process (3 worker processes" in \
            campaign.deployment.describe()

    def test_unknown_executor_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignCompiler().compile(
                _spec(num_partitions=4, executor_backend="fiber"))
