"""Indicator vocabulary, objectives and the indicator evaluator."""

from __future__ import annotations

import pytest

from repro.core.indicators import IndicatorEvaluator
from repro.core.vocabulary import (INDICATORS, Indicator, Objective, indicator,
                                   validate_objective)
from repro.errors import VocabularyError


class TestVocabulary:
    def test_core_indicators_present(self):
        for name in ("accuracy", "execution_time", "monetary_cost", "k_anonymity",
                     "records_processed", "rules_found", "r2", "latency"):
            assert name in INDICATORS

    def test_every_category_covered(self):
        categories = {ind.category for ind in INDICATORS.values()}
        assert categories == {"analytics_quality", "performance", "cost", "privacy",
                              "coverage"}

    def test_lookup_unknown_indicator(self):
        with pytest.raises(VocabularyError):
            indicator("unknown_metric")

    def test_invalid_indicator_definitions_rejected(self):
        with pytest.raises(VocabularyError):
            Indicator("x", "bad_category", "u", "maximize", "x")
        with pytest.raises(VocabularyError):
            Indicator("x", "cost", "u", "sideways", "x")

    def test_default_comparators_follow_direction(self):
        assert indicator("accuracy").default_comparator() == ">="
        assert indicator("execution_time").default_comparator() == "<="


class TestObjective:
    def test_unknown_indicator_rejected(self):
        with pytest.raises(VocabularyError):
            Objective("not_an_indicator", 1.0)

    def test_invalid_comparator_rejected(self):
        with pytest.raises(VocabularyError):
            Objective("accuracy", 0.5, comparator="~~")

    def test_non_positive_weight_rejected(self):
        with pytest.raises(VocabularyError):
            Objective("accuracy", 0.5, weight=0)

    def test_satisfaction_maximize(self):
        objective = Objective("accuracy", 0.7)
        assert objective.is_satisfied(0.7)
        assert objective.is_satisfied(0.9)
        assert not objective.is_satisfied(0.6)
        assert not objective.is_satisfied(None)

    def test_satisfaction_minimize(self):
        objective = Objective("execution_time", 10.0)
        assert objective.is_satisfied(5.0)
        assert not objective.is_satisfied(20.0)

    def test_explicit_comparator_overrides_default(self):
        objective = Objective("policy_violations", 0, comparator="<=")
        assert objective.is_satisfied(0)
        assert not objective.is_satisfied(1)

    def test_strict_comparators(self):
        assert Objective("accuracy", 0.5, comparator=">").is_satisfied(0.51)
        assert not Objective("accuracy", 0.5, comparator=">").is_satisfied(0.5)
        assert Objective("rmse", 1.0, comparator="<").is_satisfied(0.9)
        assert Objective("accuracy", 0.5, comparator="==").is_satisfied(0.5)

    def test_describe(self):
        assert Objective("accuracy", 0.7).describe() == "accuracy >= 0.7"

    def test_validate_objective_from_dict(self):
        objective = validate_objective({"indicator": "f1", "target": 0.6,
                                        "weight": 2, "hard": False})
        assert objective.indicator_name == "f1"
        assert objective.weight == 2.0
        assert objective.hard is False

    def test_validate_objective_missing_keys(self):
        with pytest.raises(VocabularyError):
            validate_objective({"indicator": "f1"})
        with pytest.raises(VocabularyError):
            validate_objective({"target": 1.0})


class TestIndicatorEvaluator:
    def test_lookup_direct_metric_key(self):
        evaluations = IndicatorEvaluator().evaluate(
            [Objective("accuracy", 0.7)], {"accuracy": 0.8})
        assert evaluations[0].value == 0.8
        assert evaluations[0].satisfied

    def test_lookup_falls_back_to_namespaced_key(self):
        evaluations = IndicatorEvaluator().evaluate(
            [Objective("accuracy", 0.7)], {"analytics-goal.accuracy": 0.75})
        assert evaluations[0].value == 0.75

    def test_namespaced_fallback_uses_worst_value(self):
        metrics = {"a.accuracy": 0.9, "b.accuracy": 0.6}
        evaluations = IndicatorEvaluator().evaluate([Objective("accuracy", 0.7)], metrics)
        assert evaluations[0].value == 0.6
        metrics_time = {"a.training_time_s": 1.0, "b.training_time_s": 5.0}
        evaluations = IndicatorEvaluator().evaluate(
            [Objective("training_time", 2.0)], metrics_time)
        assert evaluations[0].value == 5.0

    def test_missing_metric_not_satisfied(self):
        evaluations = IndicatorEvaluator().evaluate([Objective("accuracy", 0.7)], {})
        assert evaluations[0].value is None
        assert not evaluations[0].satisfied
        assert evaluations[0].score == 0.0

    def test_scores_scale_with_distance_from_target(self):
        evaluator = IndicatorEvaluator()
        low = evaluator.evaluate([Objective("accuracy", 0.8)], {"accuracy": 0.4})[0]
        high = evaluator.evaluate([Objective("accuracy", 0.8)], {"accuracy": 0.8})[0]
        assert low.score == pytest.approx(0.5)
        assert high.score == pytest.approx(1.0)

    def test_minimize_score(self):
        evaluator = IndicatorEvaluator()
        good = evaluator.evaluate([Objective("execution_time", 10.0)],
                                  {"execution_time_s": 5.0})[0]
        bad = evaluator.evaluate([Objective("execution_time", 10.0)],
                                 {"execution_time_s": 40.0})[0]
        assert good.score > 1.0
        assert bad.score == pytest.approx(0.25)

    def test_summary_aggregates(self):
        evaluator = IndicatorEvaluator()
        objectives = [Objective("accuracy", 0.7), Objective("execution_time", 10.0),
                      Objective("recall", 0.9, hard=False)]
        metrics = {"accuracy": 0.75, "execution_time_s": 5.0, "recall": 0.3}
        summary = evaluator.summary(evaluator.evaluate(objectives, metrics))
        assert summary["objectives"] == 3
        assert summary["satisfied"] == 2
        assert summary["hard_objectives_met"] == 1.0  # the failing one is soft
        assert 0 < summary["weighted_score"] <= 1.5

    def test_summary_hard_failure(self):
        evaluator = IndicatorEvaluator()
        summary = evaluator.summary(evaluator.evaluate(
            [Objective("accuracy", 0.9)], {"accuracy": 0.5}))
        assert summary["hard_objectives_met"] == 0.0

    def test_summary_of_no_objectives(self):
        summary = IndicatorEvaluator().summary([])
        assert summary["satisfaction_rate"] == 1.0
        assert summary["weighted_score"] == 1.0

    def test_evaluation_serialisation(self):
        evaluation = IndicatorEvaluator().evaluate(
            [Objective("accuracy", 0.7)], {"accuracy": 0.8})[0]
        as_dict = evaluation.as_dict()
        assert as_dict["indicator"] == "accuracy"
        assert as_dict["satisfied"] is True
