"""Declarative model and the specification DSL (parsing + round-trip)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.declarative import (DataSourceDeclaration, DeclarativeModel, Goal,
                                    VALID_TASKS)
from repro.core.dsl import parse_spec, spec_to_dict, spec_to_json
from repro.core.vocabulary import Objective
from repro.errors import SpecificationError
from tests.conftest import small_churn_spec


class TestDataSourceDeclaration:
    def test_exactly_one_source_kind_required(self):
        with pytest.raises(SpecificationError):
            DataSourceDeclaration()
        with pytest.raises(SpecificationError):
            DataSourceDeclaration(scenario="churn", csv_path="x.csv")

    def test_kind_property(self):
        assert DataSourceDeclaration(scenario="churn").kind == "scenario"
        assert DataSourceDeclaration(csv_path="a.csv").kind == "csv"
        assert DataSourceDeclaration(records=({"a": 1},)).kind == "records"

    def test_invalid_counts_rejected(self):
        with pytest.raises(SpecificationError):
            DataSourceDeclaration(scenario="churn", num_records=0)
        with pytest.raises(SpecificationError):
            DataSourceDeclaration(scenario="churn", batch_size=0)


class TestGoal:
    def test_valid_tasks_only(self):
        with pytest.raises(SpecificationError):
            Goal("g", "prediction")
        for task in VALID_TASKS:
            Goal("g", task)

    def test_goal_id_required(self):
        with pytest.raises(SpecificationError):
            Goal("", "classification")

    def test_optimize_for_validation(self):
        with pytest.raises(SpecificationError):
            Goal("g", "classification", optimize_for="vibes")

    def test_params_and_objective_lookup(self):
        goal = Goal("g", "classification",
                    objectives=(Objective("accuracy", 0.7),),
                    task_params=(("label", "churned"),))
        assert goal.params == {"label": "churned"}
        assert goal.objective_for("accuracy").target == 0.7
        assert goal.objective_for("recall") is None


class TestDeclarativeModel:
    def test_needs_name_and_goals(self):
        source = DataSourceDeclaration(scenario="churn")
        with pytest.raises(SpecificationError):
            DeclarativeModel(name="", source=source,
                             goals=(Goal("g", "classification"),))
        with pytest.raises(SpecificationError):
            DeclarativeModel(name="x", source=source, goals=())

    def test_duplicate_goal_ids_rejected(self):
        source = DataSourceDeclaration(scenario="churn")
        goals = (Goal("g", "classification"), Goal("g", "clustering"))
        with pytest.raises(SpecificationError):
            DeclarativeModel(name="x", source=source, goals=goals)

    def test_goal_lookup(self):
        source = DataSourceDeclaration(scenario="churn")
        model = DeclarativeModel(name="x", source=source,
                                 goals=(Goal("g", "classification"),))
        assert model.goal("g").task == "classification"
        with pytest.raises(SpecificationError):
            model.goal("missing")

    def test_all_objectives_flattened(self):
        goals = (Goal("a", "classification", objectives=(Objective("accuracy", 0.7),)),
                 Goal("b", "clustering", objectives=(Objective("cluster_balance", 0.1),)))
        model = DeclarativeModel(name="x", source=DataSourceDeclaration(scenario="churn"),
                                 goals=goals)
        assert [objective.indicator_name for objective in model.all_objectives] == \
            ["accuracy", "cluster_balance"]


class TestParseSpec:
    def test_parse_minimal_spec(self):
        model = parse_spec(small_churn_spec())
        assert model.name == "test-churn"
        assert model.source.scenario == "churn"
        assert model.goals[0].task == "classification"
        assert model.goals[0].objectives[0].indicator_name == "accuracy"

    def test_parse_json_string(self):
        model = parse_spec(json.dumps(small_churn_spec()))
        assert model.name == "test-churn"

    def test_parse_existing_model_is_identity(self):
        model = parse_spec(small_churn_spec())
        assert parse_spec(model) is model

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec("{not json")

    def test_wrong_type_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec(42)

    def test_missing_keys_rejected(self):
        with pytest.raises(SpecificationError):
            parse_spec({"source": {"scenario": "churn"}, "goals": [{"task": "descriptive"}]})
        with pytest.raises(SpecificationError):
            parse_spec({"name": "x", "goals": [{"task": "descriptive"}]})
        with pytest.raises(SpecificationError):
            parse_spec({"name": "x", "source": {"scenario": "churn"}, "goals": []})

    def test_goal_without_task_rejected(self):
        spec = small_churn_spec()
        spec["goals"] = [{"id": "g"}]
        with pytest.raises(SpecificationError):
            parse_spec(spec)

    def test_goal_ids_defaulted_by_position(self):
        spec = small_churn_spec()
        del spec["goals"][0]["id"]
        model = parse_spec(spec)
        assert model.goals[0].goal_id == "goal-0"

    def test_bad_section_types_rejected(self):
        spec = small_churn_spec()
        spec["privacy"] = ["not", "a", "mapping"]
        with pytest.raises(SpecificationError):
            parse_spec(spec)

    def test_unknown_indicator_in_objective_rejected(self):
        spec = small_churn_spec()
        spec["goals"][0]["objectives"] = [{"indicator": "coolness", "target": 1}]
        from repro.errors import VocabularyError
        with pytest.raises(VocabularyError):
            parse_spec(spec)

    def test_defaults_applied(self):
        spec = {"name": "d", "source": {"scenario": "churn"},
                "goals": [{"task": "descriptive", "params": {"fields": ["age"]}}]}
        model = parse_spec(spec)
        assert model.policy_name == "open_data"
        assert model.purpose == "analytics"
        assert model.region == "eu"
        assert model.source.num_records == 10_000


class TestRoundTrip:
    def test_dict_roundtrip_preserves_model(self):
        original = parse_spec(small_churn_spec())
        roundtripped = parse_spec(spec_to_dict(original))
        assert roundtripped == original

    def test_json_roundtrip(self):
        original = parse_spec(small_churn_spec())
        assert parse_spec(spec_to_json(original)) == original

    def test_records_source_roundtrip(self):
        spec = {"name": "r", "source": {"records": [{"v": 1}, {"v": 2}]},
                "goals": [{"task": "descriptive", "params": {"fields": ["v"]}}]}
        original = parse_spec(spec)
        assert parse_spec(spec_to_dict(original)) == original

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.text(min_size=1, max_size=20),
        num_records=st.integers(1, 100_000),
        task=st.sampled_from(VALID_TASKS),
        target=st.floats(0.01, 100.0, allow_nan=False),
        policy=st.sampled_from(["open_data", "gdpr_baseline", "health_strict"]),
        optimize_for=st.sampled_from(["quality", "cost", "speed", "interpretability"]),
        streaming=st.booleans(),
    )
    def test_property_roundtrip_for_generated_specs(self, name, num_records, task,
                                                    target, policy, optimize_for,
                                                    streaming):
        spec = {
            "name": name,
            "policy": policy,
            "source": {"scenario": "churn", "num_records": num_records,
                       "streaming": streaming},
            "goals": [{"id": "g", "task": task, "optimize_for": optimize_for,
                       "objectives": [{"indicator": "execution_time",
                                       "target": target}]}],
        }
        original = parse_spec(spec)
        assert parse_spec(spec_to_dict(original)) == original
