"""End-to-end scenarios exercising the whole stack together.

These tests are the executable form of the paper's narrative: a user without
data-science or data-engineering skills describes goals, the platform returns
an executed pipeline, the Labs let them compare alternative designs, and the
regulatory barrier is enforced rather than merely documented.
"""

from __future__ import annotations

import pytest

from repro.baselines.manual_pipeline import expert_basket_pipeline, expert_churn_pipeline
from repro.config import PlatformConfig
from repro.labs.scoring import ChallengeScorer
from repro.labs.session import LabSession
from repro.platform.api import BDAaaSPlatform


@pytest.fixture(scope="module")
def shared_platform():
    return BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=50))


class TestBDAaaSFunction:
    """Section 2: goals and preferences in, executed pipeline out."""

    def test_goals_in_pipeline_out(self, shared_platform):
        analyst = shared_platform.register_user("pat", role="analyst")
        workspace = shared_platform.create_workspace(analyst, "retail-analytics")
        spec = {
            "name": "cross-selling",
            "purpose": "analytics",
            "policy": "gdpr_baseline",
            "source": {"scenario": "retail", "num_records": 2000},
            "deployment": {"num_partitions": 2, "num_workers": 1},
            "goals": [{"id": "rules", "task": "association_rules",
                       "params": {"basket_field": "basket", "min_support": 0.05,
                                  "min_confidence": 0.4},
                       "objectives": [{"indicator": "rules_found", "target": 3}]}],
        }
        run = shared_platform.run_campaign(analyst, workspace, spec)
        assert run.satisfied_all_hard_objectives
        rules = run.artifacts["analytics-rules"]["rules"]
        assert any(rule["antecedent"] == ["pasta"] and
                   rule["consequent"] == ["tomato_sauce"] for rule in rules)
        # GDPR: the customer identifiers were masked before mining
        assert run.indicator("masked_fields") >= 1
        assert "protect" in run.step_metrics

    def test_regulatory_barrier_enforced_not_documented(self, shared_platform):
        researcher = shared_platform.register_user("res", role="analyst")
        workspace = shared_platform.create_workspace(researcher, "hospital")
        spec = {
            "name": "readmissions",
            "purpose": "research",
            "policy": "health_strict",
            "source": {"scenario": "patients", "num_records": 2000},
            "privacy": {"k_anonymity": 10},
            "deployment": {"num_partitions": 2, "num_workers": 1},
            "goals": [{"id": "readmit", "task": "classification",
                       "params": {"label": "readmitted",
                                  "features": ["age", "length_of_stay"],
                                  "categorical_features": ["diagnosis"]},
                       "optimize_for": "cost",
                       "objectives": [{"indicator": "k_anonymity", "target": 10},
                                      {"indicator": "policy_violations", "target": 0,
                                       "comparator": "<="}]}],
        }
        run = shared_platform.run_campaign(researcher, workspace, spec)
        assert run.indicator("achieved_k") >= 10
        assert run.indicator("policy_violations") == 0
        assert run.compliance["compliant"]
        # identifiers masked: the audit trail shows the protection step ran
        assert any(event.resource == "protect"
                   for event in shared_platform.audit.events)

    def test_wrong_purpose_is_rejected_by_policy(self, shared_platform):
        marketer = shared_platform.register_user("mark", role="analyst")
        workspace = shared_platform.create_workspace(marketer, "marketing")
        spec = {
            "name": "patient-marketing",
            "purpose": "marketing",
            "policy": "health_strict",
            "source": {"scenario": "patients", "num_records": 1500},
            "privacy": {"k_anonymity": 10},
            "deployment": {"num_partitions": 2, "num_workers": 1},
            "goals": [{"id": "agg", "task": "aggregation",
                       "params": {"group_field": "diagnosis",
                                  "value_field": "treatment_cost",
                                  "aggregation": "mean"}}],
        }
        run = shared_platform.run_campaign(marketer, workspace, spec)
        assert not run.compliance["compliant"]
        assert run.indicator("policy_violations") >= 1


class TestTrialAndErrorLoop:
    """Section 3: alternative options, consequences, run comparison, scoring."""

    def test_full_labs_exercise(self, shared_platform):
        from tests.labs.test_session_scoring import _fast_churn_challenge
        trainee = shared_platform.register_user("studentx", role="trainee")
        session = LabSession(shared_platform, trainee, _fast_churn_challenge())
        session.run_option({"model": "baseline"})
        session.run_option({"model": "logistic"})
        session.run_option({"model": "logistic", "features": "normalized"})

        report = session.compare()
        # the baseline never wins the quality indicators
        assert report.row("f1").winner != "model=baseline"
        score = ChallengeScorer().score(session)
        assert score.passed
        assert score.total_points > 60

    def test_deployment_what_if_differs_across_profiles(self, shared_platform):
        trainee = shared_platform.register_user("studenty", role="trainee")
        workspace = shared_platform.create_workspace(trainee, "whatif")
        spec = {
            "name": "whatif",
            "source": {"scenario": "web_logs", "num_records": 4000},
            "deployment": {"num_partitions": 4, "num_workers": 2},
            "goals": [{"id": "latency", "task": "aggregation",
                       "params": {"group_field": "service",
                                  "value_field": "latency_ms",
                                  "aggregation": "mean"}}],
        }
        run = shared_platform.run_campaign(trainee, workspace, spec)
        estimates = {estimate["profile"]: estimate
                     for estimate in run.deployment_estimates}
        assert estimates["large-16"]["estimated_wall_clock_s"] < \
            estimates["local"]["estimated_wall_clock_s"] * 5
        assert estimates["large-16"]["estimated_cost_usd"] > 0
        assert estimates["local"]["estimated_cost_usd"] == 0


class TestModelDrivenVsExpert:
    """The skills-barrier motivation: automation reaches expert-level outcomes."""

    def test_churn_parity_with_expert_pipeline(self, compiler, runner):
        expert = expert_churn_pipeline(num_records=1500, seed=7, num_partitions=2)
        spec = {
            "name": "compiled-churn",
            "source": {"scenario": "churn", "num_records": 1500},
            "deployment": {"num_partitions": 2, "num_workers": 1},
            "goals": [{"id": "churn", "task": "classification",
                       "model": "decision_tree",
                       "params": {"label": "churned",
                                  "features": ["tenure_months", "monthly_charges",
                                               "num_support_calls", "data_usage_gb"],
                                  "categorical_features": ["contract_type",
                                                           "payment_method"]}}],
        }
        compiled_run = runner.run(compiler.compile(spec))
        assert abs(compiled_run.indicator("accuracy") -
                   expert.metrics["accuracy"]) < 0.08
        # the compiled campaign additionally carries governance & run records
        assert compiled_run.compliance is not None
        assert not expert.governance_applied

    def test_basket_parity_with_expert_pipeline(self, compiler, runner):
        expert = expert_basket_pipeline(num_records=1500, seed=7, num_partitions=2)
        spec = {
            "name": "compiled-basket",
            "source": {"scenario": "retail", "num_records": 1500},
            "deployment": {"num_partitions": 2, "num_workers": 1},
            "goals": [{"id": "rules", "task": "association_rules",
                       "params": {"basket_field": "basket", "min_support": 0.05,
                                  "min_confidence": 0.4}}],
        }
        compiled_run = runner.run(compiler.compile(spec))
        assert compiled_run.indicator("num_rules") == expert.metrics["num_rules"]
