"""Baselines, configuration objects and the public package surface."""

from __future__ import annotations

import pytest

import repro
from repro.baselines.manual_pipeline import expert_basket_pipeline, expert_churn_pipeline
from repro.config import EngineConfig, PlatformConfig, RuntimeOptions
from repro.errors import ConfigurationError


class TestBaselines:
    def test_expert_churn_pipeline_reports_quality(self):
        result = expert_churn_pipeline(num_records=1200, num_partitions=2)
        assert result.name == "expert-churn"
        assert result.metrics["accuracy"] > 0.6
        assert result.wall_clock_s > 0
        assert not result.governance_applied

    def test_expert_basket_pipeline_finds_rules(self):
        result = expert_basket_pipeline(num_records=1200, num_partitions=2)
        assert result.metrics["num_rules"] >= 3
        assert result.artifacts["rules"]

    def test_expert_pipelines_are_deterministic_for_a_seed(self):
        first = expert_basket_pipeline(num_records=800, seed=3, num_partitions=2)
        second = expert_basket_pipeline(num_records=800, seed=3, num_partitions=2)
        assert first.metrics["num_rules"] == second.metrics["num_rules"]


class TestConfig:
    def test_engine_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(num_workers=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(default_parallelism=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(failure_rate=1.5)
        with pytest.raises(ConfigurationError):
            EngineConfig(max_task_retries=-1)

    def test_engine_config_overrides(self):
        config = EngineConfig().with_overrides(num_workers=7)
        assert config.num_workers == 7
        assert EngineConfig().num_workers == 4  # default untouched

    def test_platform_config_validation(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(free_tier_max_jobs=0)
        with pytest.raises(ConfigurationError):
            PlatformConfig(free_tier_max_rows=0)

    def test_platform_config_overrides(self):
        assert PlatformConfig().with_overrides(free_tier_max_jobs=3) \
            .free_tier_max_jobs == 3

    def test_runtime_options_merge(self):
        options = RuntimeOptions(cluster_profile="small-4", extra={"a": 1})
        merged = options.merged_with({"b": 2})
        assert merged.extra == {"a": 1, "b": 2}
        assert options.extra == {"a": 1}


class TestPublicSurface:
    def test_version_and_main_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_snippet_from_module_docstring_runs(self):
        platform = repro.BDAaaSPlatform()
        trainee = platform.register_user("doc-reader", role="trainee")
        challenge = repro.build_default_challenges().get("churn-retention")
        assert challenge.dimension_keys
        assert isinstance(platform.catalogue_overview(), str)

    def test_error_hierarchy_single_root(self):
        from repro import errors
        exception_classes = [value for value in vars(errors).values()
                             if isinstance(value, type) and issubclass(value, Exception)]
        assert all(issubclass(cls, errors.ReproError) or cls is errors.ReproError
                   for cls in exception_classes)
