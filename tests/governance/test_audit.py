"""Audit log behaviour."""

from __future__ import annotations

import json
import threading

from repro.governance.audit import AuditLog


class TestAuditLog:
    def test_record_and_query(self):
        log = AuditLog()
        log.record("ada", "campaign.submit", "churn", job="j1")
        log.record("bob", "campaign.submit", "basket")
        log.record("ada", "campaign.finish", "churn")
        assert len(log) == 3
        assert len(log.query(actor="ada")) == 2
        assert len(log.query(action="campaign.submit")) == 2
        assert len(log.query(resource="basket")) == 1

    def test_query_with_predicate(self):
        log = AuditLog()
        log.record("ada", "x", "r", size=10)
        log.record("ada", "x", "r", size=99)
        big = log.query(predicate=lambda event: event.details_dict.get("size", 0) > 50)
        assert len(big) == 1

    def test_disabled_log_records_nothing(self):
        log = AuditLog(enabled=False)
        assert log.record("ada", "x", "r") is None
        assert len(log) == 0

    def test_sequence_is_gap_free(self):
        log = AuditLog()
        for index in range(10):
            log.record("ada", "tick", str(index))
        assert log.verify_sequence()
        assert [event.sequence for event in log.events] == list(range(10))

    def test_actions_by_actor(self):
        log = AuditLog()
        log.record("ada", "x", "r")
        log.record("ada", "y", "r")
        log.record("bob", "x", "r")
        assert log.actions_by_actor() == {"ada": 2, "bob": 1}

    def test_export_json_is_valid(self):
        log = AuditLog()
        log.record("ada", "x", "r", detail="value")
        exported = json.loads(log.export_json())
        assert exported[0]["actor"] == "ada"
        assert exported[0]["details"]["detail"] == "value"

    def test_event_details_are_immutable_tuples(self):
        log = AuditLog()
        event = log.record("ada", "x", "r", a=1, b=2)
        assert event.details_dict == {"a": 1, "b": 2}

    def test_concurrent_recording_keeps_every_event(self):
        log = AuditLog()

        def worker(name):
            for _ in range(50):
                log.record(name, "tick", "resource")

        threads = [threading.Thread(target=worker, args=(f"actor-{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 200
        assert log.verify_sequence()
