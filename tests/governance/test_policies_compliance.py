"""Data-protection policies and compliance checking."""

from __future__ import annotations

import pytest

from repro.data.schemas import CHURN_SCHEMA, ENERGY_SCHEMA, PATIENT_SCHEMA, Schema, Field
from repro.errors import ComplianceError, PolicyError
from repro.governance.compliance import (CampaignDescription, ComplianceChecker,
                                         ComplianceReport, Violation)
from repro.governance.policies import (BUILTIN_POLICIES, GDPR_BASELINE, HEALTH_STRICT,
                                       OPEN_DATA, DataProtectionPolicy, PolicyRule,
                                       REQUIRE_K_ANONYMITY, REQUIRE_MASKING,
                                       TARGET_QUASI_IDENTIFIERS, TARGET_SENSITIVE)


class TestPolicyModel:
    def test_invalid_target_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRule("r", "everything", REQUIRE_MASKING)

    def test_invalid_requirement_rejected(self):
        with pytest.raises(PolicyError):
            PolicyRule("r", TARGET_SENSITIVE, "do_magic")

    def test_duplicate_rule_ids_rejected(self):
        rule = PolicyRule("same", TARGET_SENSITIVE, REQUIRE_MASKING)
        with pytest.raises(PolicyError):
            DataProtectionPolicy("p", (rule, rule))

    def test_rule_lookup(self):
        assert GDPR_BASELINE.rule("gdpr-k-anon").parameter("k") == 5
        with pytest.raises(PolicyError):
            GDPR_BASELINE.rule("nope")

    def test_minimum_k(self):
        assert GDPR_BASELINE.minimum_k == 5
        assert HEALTH_STRICT.minimum_k == 10
        assert OPEN_DATA.minimum_k is None

    def test_allowed_purposes(self):
        assert "research" in GDPR_BASELINE.allowed_purposes
        assert HEALTH_STRICT.allowed_purposes == ("research",)
        assert OPEN_DATA.allowed_purposes is None

    def test_requires_masking(self):
        assert GDPR_BASELINE.requires_masking
        assert not OPEN_DATA.requires_masking

    def test_builtin_policy_registry(self):
        assert set(BUILTIN_POLICIES) == {"open_data", "gdpr_baseline", "health_strict"}

    def test_rules_for_target(self):
        assert len(GDPR_BASELINE.rules_for_target(TARGET_QUASI_IDENTIFIERS)) == 1


class TestComplianceChecker:
    def test_open_data_policy_always_compliant(self):
        report = ComplianceChecker(OPEN_DATA).check(
            CampaignDescription(schema=PATIENT_SCHEMA, purpose="whatever"))
        assert report.compliant
        assert report.violations == []

    def test_unprotected_personal_data_violates_gdpr(self):
        report = ComplianceChecker(GDPR_BASELINE).check(
            CampaignDescription(schema=CHURN_SCHEMA))
        assert not report.compliant
        requirements = {violation.requirement for violation in report.violations}
        assert REQUIRE_MASKING in requirements
        assert REQUIRE_K_ANONYMITY in requirements

    def test_required_transforms_point_to_privacy_services(self):
        report = ComplianceChecker(GDPR_BASELINE).check(
            CampaignDescription(schema=CHURN_SCHEMA))
        capabilities = {transform["service_capability"]
                        for transform in report.required_transforms}
        assert capabilities == {"privacy:masking", "privacy:k_anonymity"}
        k_transform = next(t for t in report.required_transforms
                           if t["service_capability"] == "privacy:k_anonymity")
        assert k_transform["k"] == 5

    def test_protected_campaign_is_compliant(self):
        description = CampaignDescription(
            schema=CHURN_SCHEMA, purpose="analytics", deployment_region="eu",
            pipeline_capabilities=("privacy:masking", "privacy:k_anonymity"),
            k_anonymity=6, masks_identifiers=True)
        assert ComplianceChecker(GDPR_BASELINE).check(description).compliant

    def test_measured_k_below_requirement_violates(self):
        description = CampaignDescription(
            schema=CHURN_SCHEMA, pipeline_capabilities=("privacy:masking",
                                                        "privacy:k_anonymity"),
            k_anonymity=2, masks_identifiers=True)
        report = ComplianceChecker(GDPR_BASELINE).check(description)
        assert not report.compliant

    def test_purpose_restriction(self):
        description = CampaignDescription(
            schema=PATIENT_SCHEMA, purpose="marketing", k_anonymity=10,
            masks_identifiers=True,
            pipeline_capabilities=("privacy:masking", "privacy:k_anonymity"))
        report = ComplianceChecker(HEALTH_STRICT).check(description)
        assert any(v.requirement == "restrict_purposes" for v in report.violations)

    def test_region_restriction(self):
        description = CampaignDescription(
            schema=CHURN_SCHEMA, deployment_region="us", k_anonymity=5,
            masks_identifiers=True,
            pipeline_capabilities=("privacy:masking", "privacy:k_anonymity"))
        report = ComplianceChecker(GDPR_BASELINE).check(description)
        assert any(v.requirement == "restrict_regions" for v in report.violations)

    def test_raw_export_forbidden_for_health_data(self):
        description = CampaignDescription(
            schema=PATIENT_SCHEMA, purpose="research", k_anonymity=10,
            masks_identifiers=True, exports_raw_records=True,
            pipeline_capabilities=("privacy:masking", "privacy:k_anonymity"))
        report = ComplianceChecker(HEALTH_STRICT).check(description)
        assert any(v.requirement == "forbid_raw_export" for v in report.violations)

    def test_non_personal_schema_not_subject_to_sensitive_rules(self):
        anonymous_schema = Schema("counts", (Field("value", "float"),))
        report = ComplianceChecker(GDPR_BASELINE).check(
            CampaignDescription(schema=anonymous_schema))
        assert report.compliant

    def test_quasi_identifier_only_schema_triggers_k_rule(self):
        report = ComplianceChecker(GDPR_BASELINE).check(
            CampaignDescription(schema=ENERGY_SCHEMA))
        requirements = {violation.requirement for violation in report.violations}
        assert REQUIRE_K_ANONYMITY in requirements
        assert REQUIRE_MASKING not in requirements  # no sensitive fields in energy

    def test_raise_if_blocking(self):
        report = ComplianceChecker(GDPR_BASELINE).check(
            CampaignDescription(schema=CHURN_SCHEMA))
        with pytest.raises(ComplianceError) as excinfo:
            report.raise_if_blocking()
        assert excinfo.value.violations

    def test_report_serialisation(self):
        report = ComplianceReport(policy_name="p",
                                  violations=[Violation("r", "require_masking", "m")])
        as_dict = report.as_dict()
        assert as_dict["policy"] == "p"
        assert as_dict["compliant"] is False
        assert as_dict["violations"][0]["rule_id"] == "r"
