"""Anonymisation: masking, generalisation, k-anonymity (incl. property tests)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.generators import PatientRecordGenerator
from repro.data.schemas import PATIENT_SCHEMA
from repro.errors import AnonymizationError
from repro.governance.anonymization import (AnonymizationService, KAnonymizer,
                                            generalize_value, mask_value,
                                            measure_k_anonymity)
from repro.services.base import ServiceContext


class TestMasking:
    def test_stable_tokens(self):
        assert mask_value("alice") == mask_value("alice")

    def test_different_values_different_tokens(self):
        assert mask_value("alice") != mask_value("bob")

    def test_salt_changes_token(self):
        assert mask_value("alice", salt="a") != mask_value("alice", salt="b")

    def test_token_does_not_leak_value(self):
        assert "alice" not in mask_value("alice")

    def test_token_format(self):
        assert mask_value(12345).startswith("tok_")


class TestGeneralisation:
    def test_level_zero_is_identity(self):
        assert generalize_value(37, 0) == 37
        assert generalize_value("20133", 0) == "20133"

    def test_numeric_generalisation_buckets(self):
        assert generalize_value(37, 1, base_width=5) == "[35-40)"
        assert generalize_value(37, 2, base_width=5) == "[30-40)"

    def test_string_generalisation_truncates(self):
        assert generalize_value("20133", 1) == "201**"
        assert generalize_value("20133", 2) == "2****"
        assert generalize_value("20133", 5) == "*"

    def test_none_passes_through(self):
        assert generalize_value(None, 3) is None


class TestMeasureK:
    def test_empty_records(self):
        assert measure_k_anonymity([], ["age"]) == 0

    def test_no_quasi_identifiers_means_full_k(self):
        assert measure_k_anonymity([{"a": 1}, {"a": 2}], []) == 2

    def test_unique_records_have_k_one(self):
        records = [{"age": i} for i in range(5)]
        assert measure_k_anonymity(records, ["age"]) == 1

    def test_k_is_smallest_class(self):
        records = [{"age": 30}] * 4 + [{"age": 40}] * 2
        assert measure_k_anonymity(records, ["age"]) == 2


class TestKAnonymizer:
    def test_invalid_configuration(self):
        with pytest.raises(AnonymizationError):
            KAnonymizer(["age"], k=0)
        with pytest.raises(AnonymizationError):
            KAnonymizer([], k=3)

    def test_already_anonymous_data_untouched(self):
        records = [{"age": 30, "v": i} for i in range(10)]
        anonymized, report = KAnonymizer(["age"], k=5).anonymize(records)
        assert len(anonymized) == 10
        assert report["level"] == 0
        assert report["information_loss"] == 0.0

    def test_reaches_target_k(self, patient_records):
        anonymizer = KAnonymizer(["age", "gender", "zip_code"], k=5)
        anonymized, report = anonymizer.anonymize(patient_records)
        assert anonymized
        assert measure_k_anonymity(anonymized,
                                   ["age", "gender", "zip_code"]) >= 5
        assert report["achieved_k"] >= 5

    def test_higher_k_means_more_information_loss(self, patient_records):
        loss_small = KAnonymizer(["age", "zip_code"], k=3) \
            .anonymize(patient_records)[1]["information_loss"]
        loss_large = KAnonymizer(["age", "zip_code"], k=40) \
            .anonymize(patient_records)[1]["information_loss"]
        assert loss_large >= loss_small

    def test_empty_input(self):
        anonymized, report = KAnonymizer(["age"], k=3).anonymize([])
        assert anonymized == []
        assert report["achieved_k"] == 0

    def test_non_quasi_fields_untouched(self, patient_records):
        anonymized, _ = KAnonymizer(["age", "zip_code"], k=5) \
            .anonymize(patient_records[:200])
        original_costs = {record["patient_id"]: record["treatment_cost"]
                          for record in patient_records[:200]}
        assert all(record["treatment_cost"] == original_costs[record["patient_id"]]
                   for record in anonymized)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ages=st.lists(st.integers(0, 99), min_size=1, max_size=80),
           k=st.integers(2, 8))
    def test_property_output_is_k_anonymous_or_empty(self, ages, k):
        records = [{"age": age, "payload": index} for index, age in enumerate(ages)]
        anonymized, report = KAnonymizer(["age"], k=k, max_level=8).anonymize(records)
        if anonymized:
            assert measure_k_anonymity(anonymized, ["age"]) >= k
        assert 0.0 <= report["information_loss"] <= 1.0
        assert len(anonymized) + report["suppressed"] == len(records)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(zips=st.lists(st.text(alphabet="0123456789", min_size=4, max_size=5),
                         min_size=1, max_size=60))
    def test_property_never_returns_more_records_than_input(self, zips):
        records = [{"zip_code": z} for z in zips]
        anonymized, _ = KAnonymizer(["zip_code"], k=3).anonymize(records)
        assert len(anonymized) <= len(records)


class TestAnonymizationService:
    def test_masks_and_anonymizes_using_schema_defaults(self, engine, patient_records):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize(patient_records[:500], 2),
                                 schema=PATIENT_SCHEMA)
        result = AnonymizationService(k=5).execute(context)
        record = result.dataset.first()
        assert record["patient_id"].startswith("tok_")
        assert result.metrics["achieved_k"] >= 5
        assert result.metrics["masked_fields"] == len(PATIENT_SCHEMA.sensitive_fields)

    def test_explicit_fields_override_schema(self, engine, patient_records):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize(patient_records[:300], 2),
                                 schema=PATIENT_SCHEMA)
        result = AnonymizationService(k=1, mask_fields=["patient_id"],
                                      quasi_identifiers=[]).execute(context)
        record = result.dataset.first()
        assert record["patient_id"].startswith("tok_")
        assert record["diagnosis"] in PatientRecordGenerator.DIAGNOSES

    def test_k_one_without_masking_is_a_passthrough(self, engine):
        records = [{"a": i} for i in range(10)]
        context = ServiceContext(engine=engine, dataset=engine.parallelize(records, 1))
        result = AnonymizationService(k=1, mask_fields=[], quasi_identifiers=[]) \
            .execute(context)
        assert result.dataset.collect() == records

    def test_reports_information_loss(self, engine, patient_records):
        context = ServiceContext(engine=engine,
                                 dataset=engine.parallelize(patient_records[:500], 2),
                                 schema=PATIENT_SCHEMA)
        result = AnonymizationService(k=25).execute(context)
        assert 0.0 <= result.metrics["information_loss"] <= 1.0
        assert result.metrics["records_after"] <= 500
