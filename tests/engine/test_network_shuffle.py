"""Networked shuffle: TCP transport, retry/backoff, health, speculation.

The contract under test: with ``shuffle_transport = "tcp"`` every span a
reduce task reads travels a real socket — and the engine still returns
*identical* results and (timing aside) identical metrics to the local
shared-file transport, on both executor backends, under seeded network
chaos (dropped connections, delayed replies, on-the-wire corruption).
Resilience is layered and each layer must be observable in the metrics:
frame CRCs catch rot (``fetch_retries``), the fetch client retries with
seeded backoff, repeated failures blacklist the offending worker
(``blacklisted_workers``), lineage recovery recomputes what a retry
cannot fix (``stage_retries``), and speculative duplicates beat
stragglers (``speculative_launches`` / ``speculative_wins``).
"""

from __future__ import annotations

import os
import socket
import time

import pytest

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine import shuffle as shuffle_module
from repro.engine.context import EngineContext
from repro.engine.memory import CODEC_NONE, dump_frames
from repro.engine.retry import RetryPolicy
from repro.engine.scheduler import NodeHealthTracker
from repro.engine.shuffle_server import (ShuffleFetchClient, ShuffleServer,
                                         span_chaos_key)
from repro.engine.transport import (LocalDirShuffleTransport,
                                    TcpShuffleTransport,
                                    build_worker_transport)
from repro.errors import ConfigurationError, ShuffleCorruptionError

from test_memory_bounded import DATA, OTHER_SIDE, PIPELINES, _VOLATILE_KEYS

_HAVE_CLOSURES = serializer.supports_closures()

needs_closures = pytest.mark.skipif(
    not _HAVE_CLOSURES,
    reason="shipping task closures to worker processes needs cloudpickle")

BACKENDS = ["thread", pytest.param("process", marks=needs_closures)]


def make_engine(backend: str, transport: str = "tcp", **overrides):
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "executor_backend": backend, "shuffle_transport": transport,
               "broadcast_threshold_bytes": 0}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def run_pipeline(backend: str, pipeline_name: str, transport: str,
                 batch_size: int = 1024, **overrides):
    build = PIPELINES[pipeline_name]
    with make_engine(backend, transport=transport, batch_size=batch_size,
                     **overrides) as ctx:
        ds = build(ctx.parallelize(DATA, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()
        summary = ctx.metrics.summary()
        return first, second, summary


def _comparable(summary: dict) -> dict:
    return {key: value for key, value in summary.items()
            if key not in _VOLATILE_KEYS}


# -- retry policy --------------------------------------------------------------


def test_retry_policy_validates_parameters():
    for bad in (dict(max_retries=-1), dict(backoff_s=-0.1),
                dict(multiplier=0.5), dict(jitter=1.5)):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**bad)


def test_retry_policy_zero_backoff_never_sleeps():
    policy = RetryPolicy(max_retries=5, backoff_s=0.0)
    assert all(policy.delay_s(n, "k") == 0.0 for n in range(6))


def test_retry_policy_backoff_is_exponential_capped_and_deterministic():
    policy = RetryPolicy(max_retries=8, backoff_s=0.1, multiplier=2.0,
                         max_backoff_s=0.5, jitter=0.5, seed=7)
    for attempt in range(9):
        base = min(0.1 * 2 ** attempt, 0.5)
        delay = policy.delay_s(attempt, "span-a")
        assert base * 0.5 <= delay <= base * 1.5
        # seeded: the same (seed, key, attempt) always draws the same jitter
        assert delay == policy.delay_s(attempt, "span-a")
    # different keys decorrelate
    schedule_a = [policy.delay_s(n, "span-a") for n in range(4)]
    schedule_b = [policy.delay_s(n, "span-b") for n in range(4)]
    assert schedule_a != schedule_b


def test_retry_policy_runs_until_success_and_counts_retries():
    calls = []
    retries = []

    def flaky(attempt):
        calls.append(attempt)
        if attempt < 2:
            raise OSError("transient")
        return "done"

    policy = RetryPolicy(max_retries=3, backoff_s=0.0)
    result = policy.run(flaky, key="k", retry_on=(OSError,),
                        on_retry=lambda n, e: retries.append(n))
    assert result == "done"
    assert calls == [0, 1, 2]
    assert retries == [0, 1]


def test_retry_policy_exhaustion_raises_last_error():
    policy = RetryPolicy(max_retries=2, backoff_s=0.0)
    with pytest.raises(OSError, match="always"):
        policy.run(lambda n: (_ for _ in ()).throw(OSError("always")),
                   retry_on=(OSError,))


def test_retry_policy_does_not_retry_foreign_errors():
    calls = []

    def wrong(attempt):
        calls.append(attempt)
        raise ValueError("not retryable")

    policy = RetryPolicy(max_retries=5, backoff_s=0.0)
    with pytest.raises(ValueError):
        policy.run(wrong, retry_on=(OSError,))
    assert calls == [0]


def test_retry_policy_sleeps_the_seeded_schedule():
    slept = []
    policy = RetryPolicy(max_retries=2, backoff_s=0.05, jitter=0.5, seed=3)

    def fail_twice(attempt):
        if attempt < 2:
            raise OSError("boom")
        return attempt

    assert policy.run(fail_twice, key="x", retry_on=(OSError,),
                      sleep=slept.append) == 2
    assert slept == [policy.delay_s(0, "x"), policy.delay_s(1, "x")]


# -- span chaos keys -----------------------------------------------------------


def test_span_chaos_key_strips_worker_pids():
    # the same logical span written by two different worker pids (and
    # write sequence numbers) must draw the same chaos decisions
    assert span_chaos_key("shuffle-3/map-1-71234-9.data", 128) == \
        span_chaos_key("shuffle-3/map-1-80021-2.data", 128)
    # but different maps, shuffles or offsets stay distinct
    keys = {span_chaos_key("shuffle-3/map-1-71234-9.data", 128),
            span_chaos_key("shuffle-3/map-2-71234-9.data", 128),
            span_chaos_key("shuffle-4/map-1-71234-9.data", 128),
            span_chaos_key("shuffle-3/map-1-71234-9.data", 256)}
    assert len(keys) == 4


# -- shuffle server + fetch client ---------------------------------------------


RECORDS = [(i % 5, f"value-{i}") for i in range(64)]


@pytest.fixture
def server_root(tmp_path):
    root = tmp_path / "transport"
    root.mkdir()
    payload = dump_frames(RECORDS, CODEC_NONE)
    span_dir = root / "shuffle-1"
    span_dir.mkdir()
    (span_dir / "map-0-1234-0.data").write_bytes(payload)
    return str(root), "shuffle-1/map-0-1234-0.data", len(payload)


def test_server_round_trips_spans(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root)
    try:
        client = ShuffleFetchClient(server.address)
        assert client.fetch_records(relpath, 0, length) == RECORDS
        assert client.drain_retries() == 0
        assert server.requests_served == 1
    finally:
        server.stop()


def test_server_rejects_unknown_files_and_traversal(server_root):
    root, _, _ = server_root
    server = ShuffleServer(root)
    policy = RetryPolicy(max_retries=0, backoff_s=0.0)
    try:
        client = ShuffleFetchClient(server.address, policy=policy)
        with pytest.raises(ShuffleCorruptionError, match="no file"):
            client.fetch_records("shuffle-1/missing.data", 0, 10)
        with pytest.raises(ShuffleCorruptionError, match="rejected"):
            client.fetch_records("../../etc/passwd", 0, 10)
    finally:
        server.stop()


def test_client_retries_through_dropped_connections(server_root):
    root, relpath, length = server_root
    # seeded drops: some attempts die, the retry budget rides them out
    server = ShuffleServer(root, drop_rate=0.5, seed=11)
    policy = RetryPolicy(max_retries=8, backoff_s=0.0, seed=11)
    try:
        client = ShuffleFetchClient(server.address, policy=policy)
        for _ in range(4):
            assert client.fetch_records(relpath, 0, length) == RECORDS
        # at 50% drop over 4 fetches at least one attempt must have died
        assert client.drain_retries() > 0
        assert client.drain_retries() == 0, "drain must reset the counter"
    finally:
        server.stop()


def test_client_detects_wire_corruption_and_escalates(server_root):
    root, relpath, length = server_root
    # every attempt corrupts: the frame CRC catches it, retries are spent,
    # the exhausted budget escalates as a corruption naming the tcp span
    server = ShuffleServer(root, corruption_rate=1.0, seed=2)
    policy = RetryPolicy(max_retries=2, backoff_s=0.0)
    try:
        client = ShuffleFetchClient(server.address, policy=policy)
        with pytest.raises(ShuffleCorruptionError, match="tcp://"):
            client.fetch_records(relpath, 0, length)
        assert client.drain_retries() == 2
    finally:
        server.stop()


def test_client_survives_delayed_replies(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root, delay_s=0.05)
    try:
        client = ShuffleFetchClient(server.address, timeout_s=5.0)
        assert client.fetch_records(relpath, 0, length) == RECORDS
    finally:
        server.stop()


def test_client_wraps_dead_server_into_corruption_error(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root)
    address = server.address
    server.stop()
    policy = RetryPolicy(max_retries=1, backoff_s=0.0)
    client = ShuffleFetchClient(address, policy=policy, timeout_s=0.5)
    with pytest.raises(ShuffleCorruptionError, match="failed after 2"):
        client.fetch_records(relpath, 0, length)


def test_fetched_spans_are_length_checked(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root)
    policy = RetryPolicy(max_retries=0, backoff_s=0.0)
    try:
        client = ShuffleFetchClient(server.address, policy=policy)
        # ask one byte past the end: the server truncates, the client balks
        with pytest.raises(ShuffleCorruptionError):
            client.fetch_records(relpath, 0, length + 1)
    finally:
        server.stop()


# -- transport selection -------------------------------------------------------


def test_tcp_transport_serves_remote_spans_and_local_spills(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root)
    try:
        transport = TcpShuffleTransport(root, server.address)
        assert transport.networked
        # a span under the transport root goes over the wire
        assert transport.read_span(os.path.join(root, relpath),
                                   0, length) == RECORDS
        assert server.requests_served == 1
        spec = transport.worker_spec()
        assert spec["mode"] == "tcp"
        assert tuple(spec["address"]) == tuple(server.address)
    finally:
        server.stop()


def test_tcp_transport_reads_foreign_paths_locally(tmp_path, server_root):
    root, _, _ = server_root
    server = ShuffleServer(root)
    try:
        transport = TcpShuffleTransport(root, server.address)
        # a worker-local spill file outside the transport root never
        # touches the network
        payload = dump_frames(RECORDS, CODEC_NONE)
        local = tmp_path / "local-spill.data"
        local.write_bytes(payload)
        assert transport.read_span(str(local), 0, len(payload)) == RECORDS
        assert server.requests_served == 0
    finally:
        server.stop()


def test_build_worker_transport_rebuilds_tcp_from_spec(server_root):
    root, relpath, length = server_root
    server = ShuffleServer(root)
    try:
        config = EngineConfig(fetch_max_retries=2, fetch_backoff_s=0.0)
        spec = TcpShuffleTransport(root, server.address).worker_spec()
        rebuilt = build_worker_transport(spec, config)
        assert isinstance(rebuilt, TcpShuffleTransport)
        assert rebuilt.read_span(os.path.join(root, relpath),
                                 0, length) == RECORDS
    finally:
        server.stop()


def test_build_worker_transport_accepts_local_specs(tmp_path):
    config = EngineConfig()
    spec = LocalDirShuffleTransport(str(tmp_path)).worker_spec()
    rebuilt = build_worker_transport(spec, config)
    assert isinstance(rebuilt, LocalDirShuffleTransport)
    assert not rebuilt.networked
    # pre-PR compatibility: a bare root string still builds a local transport
    legacy = build_worker_transport(str(tmp_path), config)
    assert isinstance(legacy, LocalDirShuffleTransport)


# -- transport parity: every wide operator, both backends ----------------------


@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_tcp_parity_thread_backend(pipeline_name):
    """TCP and local transports agree record-for-record on every operator."""
    tcp_first, tcp_second, tcp_summary = run_pipeline(
        "thread", pipeline_name, "tcp")
    local_first, local_second, local_summary = run_pipeline(
        "thread", pipeline_name, "local")
    assert tcp_first == local_first
    assert tcp_second == local_second
    assert _comparable(tcp_summary) == _comparable(local_summary)
    assert tcp_summary["fetch_retries"] == 0, "clean runs never retry"


@needs_closures
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_tcp_parity_process_backend(pipeline_name):
    tcp_first, tcp_second, tcp_summary = run_pipeline(
        "process", pipeline_name, "tcp")
    local_first, local_second, local_summary = run_pipeline(
        "process", pipeline_name, "local")
    assert tcp_first == local_first
    assert tcp_second == local_second
    assert _comparable(tcp_summary) == _comparable(local_summary)
    assert tcp_summary["fetch_retries"] == 0


@pytest.mark.parametrize("batch_size", [0, 1])
def test_tcp_parity_across_batch_sizes(batch_size):
    """Record-at-a-time and single-record batching ride the wire too."""
    for pipeline_name in ("reduce_by_key", "join"):
        tcp = run_pipeline("thread", pipeline_name, "tcp",
                           batch_size=batch_size)
        local = run_pipeline("thread", pipeline_name, "local",
                             batch_size=batch_size)
        assert tcp[0] == local[0]
        assert tcp[1] == local[1]


# -- spilled spans: one bounded in-place re-read before escalation -------------


def test_spilled_span_gets_one_in_place_reread(monkeypatch):
    """A transient glitch on a locally spilled span must not trigger
    lineage recovery: the shuffle layer re-reads the span once in place
    (counted as a fetch retry), and only a *persistent* failure escalates
    to ``FetchFailedError``."""
    real_load = shuffle_module.load_frames
    glitched = []

    def flaky_load(path, offset, length):
        key = (path, offset)
        if "spill" in os.path.basename(path) and key not in glitched:
            glitched.append(key)
            raise ShuffleCorruptionError("transient read glitch",
                                         path=path, offset=offset)
        return real_load(path, offset, length)

    monkeypatch.setattr(shuffle_module, "load_frames", flaky_load)
    # a tiny cap forces every bucket through the spill file; the optimizer
    # is off so its (corruption-tolerant) statistics sampler does not
    # consume the one-shot glitches before the authoritative read does
    with make_engine("thread", transport="local", optimizer_rules=(),
                     shuffle_memory_bytes=128) as ctx:
        ds = ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b, 4)
        result = sorted(ds.collect())
        job = ctx.metrics.jobs[-1]
        assert glitched, "the tiny cap must actually route reads via spills"
        assert job.fetch_retries == len(glitched)
        assert job.stage_retries == 0, \
            "an in-place re-read must not escalate to lineage recovery"
    with make_engine("thread", transport="local") as ctx:
        expected = sorted(ctx.parallelize(DATA, 4)
                          .reduce_by_key(lambda a, b: a + b, 4).collect())
    assert result == expected


def test_persistently_corrupt_spill_still_recovers_via_lineage(monkeypatch):
    """When the re-read fails too, the existing PR 8 ladder takes over."""
    real_load = shuffle_module.load_frames

    def rotten_load(path, offset, length):
        if "spill" in os.path.basename(path):
            raise ShuffleCorruptionError("persistent rot",
                                         path=path, offset=offset)
        return real_load(path, offset, length)

    with make_engine("thread", transport="local", optimizer_rules=(),
                     shuffle_memory_bytes=128, max_stage_retries=8) as ctx:
        ds = ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b, 4)
        # rot the spill reads only after the map stage has written them
        monkeypatch.setattr(shuffle_module, "load_frames", rotten_load)
        with pytest.raises(Exception):
            ds.collect()


# -- node health tracker -------------------------------------------------------


def test_health_tracker_blacklists_after_consecutive_failures():
    tracker = NodeHealthTracker(failure_threshold=3)
    assert tracker.strikes_enabled
    for _ in range(2):
        tracker.record_failure(101)
    assert not tracker.is_blacklisted(101)
    tracker.record_failure(101)
    assert tracker.is_blacklisted(101)
    assert tracker.drain_new() == [101]
    assert tracker.drain_new() == [], "drain must reset"


def test_health_tracker_success_resets_strikes():
    tracker = NodeHealthTracker(failure_threshold=2)
    tracker.record_failure(7)
    tracker.record_success(7)
    tracker.record_failure(7)
    assert not tracker.is_blacklisted(7), \
        "non-consecutive failures must not blacklist"
    tracker.record_failure(7)
    assert tracker.is_blacklisted(7)


def test_health_tracker_ignores_unknown_workers():
    tracker = NodeHealthTracker(failure_threshold=1)
    tracker.record_failure(None)  # producer unknown: nobody to blame
    assert tracker.blacklisted == set()


def test_health_tracker_disabled_without_threshold():
    tracker = NodeHealthTracker(failure_threshold=0)
    assert not tracker.strikes_enabled
    tracker.record_failure(5)
    tracker.record_failure(5)
    assert not tracker.is_blacklisted(5)


def test_health_tracker_detects_stale_heartbeats(tmp_path):
    beats = tmp_path / "heartbeats"
    beats.mkdir()
    now = [1000.0]
    tracker = NodeHealthTracker(heartbeat_timeout_s=1.0,
                                heartbeat_dir=lambda: str(beats),
                                clock=lambda: now[0])
    assert tracker.watches_beats
    fresh = beats / "4242"
    fresh.write_text("")
    os.utime(str(fresh), (now[0], now[0]))
    tracker.check_heartbeats()
    assert not tracker.is_blacklisted(4242)
    now[0] += 5.0  # the worker missed several beats
    tracker.check_heartbeats()
    assert tracker.is_blacklisted(4242)


# -- integration: blacklisting, speculation, heartbeats ------------------------


@needs_closures
def test_blacklisting_engages_and_results_survive():
    """Repeated injected failures blacklist workers; the job still finishes
    with exactly the fault-free answer and the counter proves it fired.

    A single worker keeps the strike sequence deterministic: with several
    workers the pool's task placement decides whether failures land
    *consecutively* on one pid, and the assertion would be a coin flip."""
    with make_engine("process", transport="local", failure_rate=0.6,
                     num_workers=1, max_task_retries=20, max_stage_retries=8,
                     blacklist_failure_threshold=2, seed=5) as ctx:
        ds = (ctx.parallelize(DATA, 4)
              .reduce_by_key(lambda a, b: a + b, 4))
        result = sorted(ds.collect())
        job = ctx.metrics.jobs[-1]
        assert job.blacklisted_workers >= 1, \
            "a 60% failure rate must strike out at least one worker"
    with make_engine("thread", transport="local") as ctx:
        expected = sorted(ctx.parallelize(DATA, 4)
                          .reduce_by_key(lambda a, b: a + b, 4).collect())
    assert result == expected


@needs_closures
def test_speculation_beats_an_injected_straggler(tmp_path):
    """One task stalls on its first attempt; past the completion quantile
    the driver launches a duplicate, the duplicate wins, and the result is
    identical to an unspeculated run."""
    marker = str(tmp_path / "straggled-once")

    def straggle(x):
        if x == 0 and not os.path.exists(marker):
            with open(marker, "w"):
                pass
            time.sleep(2.0)
        return (x % 3, x)

    with make_engine("process", transport="local", num_workers=3,
                     speculation_multiplier=2.0, speculation_quantile=0.5,
                     seed=3) as ctx:
        ds = (ctx.parallelize(range(40), 4).map(straggle)
              .reduce_by_key(lambda a, b: a + b))
        result = sorted(ds.collect())
        job = ctx.metrics.jobs[-1]
        assert job.speculative_launches >= 1
        assert job.speculative_wins >= 1
    with make_engine("thread", transport="local") as ctx:
        expected = sorted(ctx.parallelize(range(40), 4)
                          .map(lambda x: (x % 3, x))
                          .reduce_by_key(lambda a, b: a + b).collect())
    assert result == expected


@needs_closures
def test_heartbeats_run_clean_without_false_positives():
    """Healthy workers beating on time must never be blacklisted."""
    with make_engine("process", transport="local",
                     heartbeat_interval_s=0.05,
                     heartbeat_timeout_s=30.0) as ctx:
        ds = ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b, 4)
        result = sorted(ds.collect())
        job = ctx.metrics.jobs[-1]
        assert job.blacklisted_workers == 0
    with make_engine("thread", transport="local") as ctx:
        expected = sorted(ctx.parallelize(DATA, 4)
                          .reduce_by_key(lambda a, b: a + b, 4).collect())
    assert result == expected


@needs_closures
def test_heartbeat_files_actually_appear():
    with make_engine("process", transport="local",
                     heartbeat_interval_s=0.05) as ctx:
        ds = ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b, 4)
        ds.collect()
        beats = ctx._transport.heartbeat_dir()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if os.path.isdir(beats) and os.listdir(beats):
                break
            time.sleep(0.05)
        assert os.path.isdir(beats) and os.listdir(beats), \
            "pool workers must write pid-named heartbeat files"


# -- config surface ------------------------------------------------------------


def test_config_validates_network_knobs():
    for bad in (dict(shuffle_transport="udp"), dict(fetch_max_retries=-1),
                dict(fetch_backoff_s=-0.1), dict(network_drop_rate=1.5),
                dict(network_delay_s=-1.0), dict(speculation_multiplier=-1),
                dict(speculation_quantile=2.0),
                dict(blacklist_failure_threshold=-1),
                dict(heartbeat_interval_s=-1.0)):
        with pytest.raises(ConfigurationError):
            EngineConfig(**bad)


def test_tcp_server_lifecycle_is_owned_by_the_context():
    ctx = make_engine("thread", transport="tcp")
    server = ctx._shuffle_server
    assert server is not None
    address = server.address
    ctx.stop()
    # the socket is gone once the context stops
    with pytest.raises(OSError):
        probe = socket.create_connection(address, timeout=0.5)
        probe.close()
