"""Columnar batches, projection-aware scans and compressed spill frames.

Three contracts under test:

* :class:`~repro.engine.columnar.ColumnBatch` round-trips rows exactly
  (iteration, projection, slicing, null masks) — including a hypothesis
  property over generated records;
* columnar execution is invisible: for every wide operator, results, order
  and every non-timing metric are identical with ``columnar_enabled`` on or
  off, across batch sizes and both executor backends;
* compressed spill frames: codec resolution, frame round-trips, measured
  byte estimates that are backend- and codec-consistent, and spill files
  that actually shrink under compression.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.data.schemas import Field, Schema
from repro.data.sources import InMemorySource
from repro.engine.columnar import ColumnBatch
from repro.engine.context import EngineContext
from repro.engine.memory import (CODEC_LZ4, CODEC_NONE, CODEC_ZLIB,
                                 codec_name, decode_payload, dump_frames,
                                 encode_payload, iter_frames, load_frames,
                                 lz4_available, resolve_codec)
from repro.engine.shuffle import estimate_bytes
from repro.errors import ConfigurationError

from test_memory_bounded import DATA, OTHER_SIDE, PIPELINES, TINY_CAP

SCHEMA = Schema(name="kv_records",
                fields=(Field("k", "int"), Field("v", "int")))

RECORDS = [{"k": k, "v": v} for k, v in DATA]

#: Metric keys that legitimately differ across executor backends and
#: columnar modes (everything else must match exactly).
_TIMING_KEYS = ("wall_clock_s", "total_task_time_s")


def make_engine(columnar: bool, batch_size: int = 1024,
                backend: str = "thread", **overrides) -> EngineContext:
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "columnar_enabled": columnar,
               "executor_backend": backend, "broadcast_threshold_bytes": 0}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def run_schema_pipeline(pipeline_name: str, columnar: bool,
                        batch_size: int = 1024, backend: str = "thread",
                        **overrides):
    """One wide pipeline over a schema-bearing scan; results + metrics."""
    build = PIPELINES[pipeline_name]
    with make_engine(columnar, batch_size, backend, **overrides) as ctx:
        base = ctx.from_source(InMemorySource("kv", RECORDS, schema=SCHEMA),
                               num_partitions=4)
        kv = base.map(lambda record: (record["k"], record["v"]))
        ds = build(kv, ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()
        summary = ctx.metrics.summary()
        comparable = {key: value for key, value in summary.items()
                      if key not in _TIMING_KEYS}
        return first, second, comparable


# ---------------------------------------------------------------------------
# ColumnBatch
# ---------------------------------------------------------------------------


class TestColumnBatch:
    def test_from_records_roundtrip(self):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": None}]
        batch = ColumnBatch.from_records(records, ["a", "b"])
        assert len(batch) == 2
        assert batch.to_records() == records
        assert list(batch) == records

    def test_missing_fields_read_as_none(self):
        batch = ColumnBatch.from_records([{"a": 1}], ["a", "b"])
        assert batch.to_records() == [{"a": 1, "b": None}]

    def test_column_and_null_mask(self):
        batch = ColumnBatch.from_records(
            [{"a": 1}, {"a": None}, {"a": 3}], ["a"])
        assert batch.column("a") == [1, None, 3]
        assert batch.null_mask("a") == [False, True, False]
        # masks are cached per batch
        assert batch.null_mask("a") is batch.null_mask("a")

    def test_project_shares_column_vectors(self):
        batch = ColumnBatch.from_records(
            [{"a": i, "b": -i, "c": str(i)} for i in range(100)],
            ["a", "b", "c"])
        projected = batch.project(["a", "c"])
        assert projected.fields == ("a", "c")
        assert len(projected) == 100
        assert projected.column("a") is batch.column("a")
        assert projected.to_records() == \
            [{"a": i, "c": str(i)} for i in range(100)]

    def test_project_to_zero_fields_keeps_length(self):
        batch = ColumnBatch.from_records([{"a": 1}, {"a": 2}], ["a"])
        empty = batch.project([])
        assert len(empty) == 2
        assert empty.to_records() == [{}, {}]

    def test_slice(self):
        batch = ColumnBatch.from_records(
            [{"a": i} for i in range(10)], ["a"])
        chunk = batch.slice(3, 7)
        assert len(chunk) == 4
        assert chunk.to_records() == [{"a": i} for i in range(3, 7)]
        assert len(batch.slice(8, 100)) == 2
        assert len(batch.slice(20, 30)) == 0

    def test_has_fields(self):
        batch = ColumnBatch.from_records([{"a": 1, "b": 2}], ["a", "b"])
        assert batch.has_fields(["a"])
        assert batch.has_fields(["a", "b"])
        assert not batch.has_fields(["a", "z"])

    @settings(max_examples=60, deadline=None)
    @given(records=st.lists(st.fixed_dictionaries({
               "a": st.integers(-1000, 1000),
               "b": st.one_of(st.none(), st.text(max_size=6)),
               "c": st.floats(allow_nan=False, allow_infinity=False)}),
               max_size=40),
           keep=st.lists(st.sampled_from(["a", "b", "c"]), unique=True),
           cut=st.integers(0, 45))
    def test_roundtrip_property(self, records, keep, cut):
        """from_records -> iterate/project/slice reproduces row semantics."""
        fields = ["a", "b", "c"]
        batch = ColumnBatch.from_records(records, fields)
        assert len(batch) == len(records)
        assert batch.to_records() == records
        assert batch.project(keep).to_records() == \
            [{name: record.get(name) for name in keep} for record in records]
        assert batch.slice(0, cut).to_records() == records[:cut]
        assert batch.null_mask("b") == \
            [record["b"] is None for record in records]


# ---------------------------------------------------------------------------
# Columnar scans
# ---------------------------------------------------------------------------


class TestColumnarScan:
    def test_schema_scan_produces_column_batches(self):
        with make_engine(columnar=True) as ctx:
            ds = ctx.from_source(InMemorySource("kv", RECORDS, schema=SCHEMA),
                                 num_partitions=2)
            batches = list(ds.compute_batches(0, _task_context(), 100))
            assert batches and all(isinstance(b, ColumnBatch) for b in batches)
            assert sum(len(b) for b in batches) == len(RECORDS) // 2

    def test_columnar_disabled_produces_row_lists(self):
        with make_engine(columnar=False) as ctx:
            ds = ctx.from_source(InMemorySource("kv", RECORDS, schema=SCHEMA),
                                 num_partitions=2)
            batches = list(ds.compute_batches(0, _task_context(), 100))
            assert batches and all(isinstance(b, list) for b in batches)

    def test_schemaless_source_falls_back_to_rows(self):
        with make_engine(columnar=True) as ctx:
            ds = ctx.from_source(InMemorySource("kv", RECORDS, schema=None),
                                 num_partitions=2)
            batches = list(ds.compute_batches(0, _task_context(), 100))
            assert batches and all(isinstance(b, list) for b in batches)

    def test_pruned_scan_reads_only_requested_columns(self):
        source = InMemorySource("kv", RECORDS, schema=SCHEMA)
        with make_engine(columnar=True) as ctx:
            ds = ctx.from_source(source, num_partitions=2).project(["v"])
            rows = ds.collect()
            assert rows == [{"v": v} for _, v in DATA]
            # the source pivoted its records into the shared column store
            assert source._column_store is not None

    def test_count_over_projection_matches_rows(self):
        with make_engine(columnar=True) as ctx:
            ds = ctx.from_source(InMemorySource("kv", RECORDS, schema=SCHEMA),
                                 num_partitions=4).project(["k"])
            assert ds.count() == len(RECORDS)


def _task_context():
    from repro.engine.dataset import TaskContext
    return TaskContext()


# ---------------------------------------------------------------------------
# Parity: columnar on/off x batch size x backend, all wide operators
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [0, 1, 1024])
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_columnar_parity_thread(pipeline_name, batch_size):
    """Columnar on/off agree record-for-record and metric-for-metric."""
    on_first, on_second, on_metrics = run_schema_pipeline(
        pipeline_name, columnar=True, batch_size=batch_size)
    off_first, off_second, off_metrics = run_schema_pipeline(
        pipeline_name, columnar=False, batch_size=batch_size)
    assert on_first == off_first
    assert on_second == off_second
    assert on_metrics == off_metrics


@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_columnar_parity_process_backend(pipeline_name):
    """The process backend sees the same columnar results and metrics."""
    thread = run_schema_pipeline(pipeline_name, columnar=True)
    process = run_schema_pipeline(pipeline_name, columnar=True,
                                  backend="process")
    assert process == thread


# ---------------------------------------------------------------------------
# Codec resolution and frame round-trips
# ---------------------------------------------------------------------------


class TestCodecResolution:
    def test_disabled_compression_resolves_to_none(self):
        assert resolve_codec("auto", enabled=False) == CODEC_NONE
        assert resolve_codec("zlib", enabled=False) == CODEC_NONE

    def test_auto_prefers_lz4_else_zlib(self):
        resolved = resolve_codec("auto", enabled=True)
        assert resolved == (CODEC_LZ4 if lz4_available() else CODEC_ZLIB)

    def test_explicit_codecs(self):
        assert resolve_codec("none", enabled=True) == CODEC_NONE
        assert resolve_codec("zlib", enabled=True) == CODEC_ZLIB

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_codec("snappy", enabled=True)

    def test_explicit_lz4_without_package_rejected(self):
        if lz4_available():  # pragma: no cover - depends on environment
            assert resolve_codec("lz4", enabled=True) == CODEC_LZ4
        else:
            with pytest.raises(ConfigurationError):
                resolve_codec("lz4", enabled=True)

    def test_config_validates_spill_codec(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(spill_codec="gzip")

    def test_codec_names(self):
        assert codec_name(CODEC_NONE) == "none"
        assert codec_name(CODEC_ZLIB) == "zlib"
        assert codec_name(CODEC_LZ4) == "lz4"


class TestCompressedFrames:
    def test_payload_roundtrip(self):
        raw = b"abcabcabc" * 500
        for codec in (CODEC_NONE, CODEC_ZLIB):
            assert decode_payload(encode_payload(raw, codec), codec) == raw
        assert len(encode_payload(raw, CODEC_ZLIB)) < len(raw)

    def test_frames_roundtrip_compressed(self, tmp_path):
        records = [{"url": f"/page/{i % 20}", "status": 200}
                   for i in range(10_000)]
        plain = dump_frames(records, CODEC_NONE)
        packed = dump_frames(records, CODEC_ZLIB)
        assert len(packed) < len(plain) / 2
        path = tmp_path / "frames.bin"
        path.write_bytes(packed)
        assert load_frames(str(path), 0, len(packed)) == records

    def test_mixed_codec_frames_in_one_file(self, tmp_path):
        """Frames are self-describing: readers never consult the config."""
        head = dump_frames(["a"] * 10, CODEC_NONE)
        tail = dump_frames(["b"] * 10, CODEC_ZLIB)
        path = tmp_path / "mixed.bin"
        path.write_bytes(head + tail)
        frames = list(iter_frames(str(path), 0, len(head) + len(tail)))
        assert frames == [["a"] * 10, ["b"] * 10]

    def test_measured_estimate_tracks_codec(self):
        records = [{"url": f"/api/items?page={i % 20}", "service": "frontend"}
                   for i in range(2000)]
        plain = estimate_bytes(records, compressed=False)
        packed = estimate_bytes(records, compressed=True, codec=CODEC_ZLIB)
        unpacked = estimate_bytes(records, compressed=True, codec=CODEC_NONE)
        assert packed < plain / 2  # measured ratio, not the old constant
        assert unpacked == plain  # codec none measures nothing away


# ---------------------------------------------------------------------------
# Backend- and codec-consistent byte accounting; spill shrinkage
# ---------------------------------------------------------------------------

#: Compressible pair records (web-log-ish values) for the byte tests.
LOG_PAIRS = [(i % 7, f"GET /api/items?page={i % 20}&session=s{i % 10:04d}")
             for i in range(2000)]


def run_log_group_by(backend: str, codec: str, **overrides):
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "executor_backend": backend, "spill_codec": codec,
               "broadcast_threshold_bytes": 0}
    options.update(overrides)
    with EngineContext(EngineConfig(**options)) as ctx:
        result = ctx.parallelize(LOG_PAIRS, 4).group_by_key(4).collect()
        summary = ctx.metrics.summary()
        comparable = {key: value for key, value in summary.items()
                      if key not in _TIMING_KEYS}
        return result, comparable


@pytest.mark.parametrize("codec", ["none", "zlib"])
def test_byte_metrics_backend_invariant_per_codec(codec):
    """Write-side measured estimates agree across thread/process backends."""
    thread = run_log_group_by("thread", codec)
    process = run_log_group_by("process", codec)
    assert process == thread


def test_compressed_estimates_below_uncompressed():
    _, none_metrics = run_log_group_by("thread", "none")
    _, zlib_metrics = run_log_group_by("thread", "zlib")
    assert zlib_metrics["shuffle_bytes"] < none_metrics["shuffle_bytes"]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_skew_split_parity_under_compression(backend):
    """Skew-split sub-reads stay exact over compressed, spilled shuffles."""
    overrides = {"skew_split_factor": 4, "skew_min_partition_bytes": 1,
                 "shuffle_memory_bytes": TINY_CAP}
    result, metrics = run_log_group_by(backend, "zlib", **overrides)
    plain_result, _ = run_log_group_by("thread", "none")
    assert result == plain_result
    assert metrics["spills"] > 0


def test_compression_shrinks_spill_bytes():
    """Acceptance: compressed spill frames move >= 2x fewer bytes to disk."""
    compressed_result, compressed = run_log_group_by(
        "thread", "zlib", shuffle_memory_bytes=TINY_CAP)
    plain_result, plain = run_log_group_by(
        "thread", "none", shuffle_memory_bytes=TINY_CAP)
    assert compressed_result == plain_result
    assert plain["spills"] > 0 and compressed["spills"] > 0
    assert compressed["spill_bytes"] * 2 <= plain["spill_bytes"]
