"""Shuffle manager and block store (cache) behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.shuffle import ShuffleManager, estimate_bytes
from repro.engine.storage import BlockStore
from repro.errors import ShuffleError


class TestEstimateBytes:
    def test_empty_is_zero(self):
        assert estimate_bytes([]) == 0

    def test_positive_for_any_records(self):
        assert estimate_bytes([1, 2, 3]) > 0

    def test_scales_roughly_with_count(self):
        small = estimate_bytes([{"a": 1}] * 10, compressed=False)
        large = estimate_bytes([{"a": 1}] * 1000, compressed=False)
        assert large > small * 50

    def test_compression_reduces_estimate(self):
        records = [{"field": i} for i in range(500)]
        assert estimate_bytes(records, compressed=True) < \
            estimate_bytes(records, compressed=False)

    def test_unpicklable_fallback_skips_compression(self):
        """Regression: the repr-length fallback used to divide by the 2.5x
        compression ratio too, systematically undercounting unpicklable
        buckets — a repr is not a compressible serialised payload."""
        records = [lambda: None] * 200  # lambdas refuse to pickle
        assert estimate_bytes(records, compressed=True) == \
            estimate_bytes(records, compressed=False)

    def test_unpicklable_fallback_counts_repr_lengths(self):
        records = [lambda: None] * 200
        per_record = len(repr(records[0]))
        estimated = estimate_bytes(records, compressed=True)
        assert estimated >= 200 * (per_record // 2)


class TestShuffleManager:
    def test_write_then_read_roundtrip(self):
        manager = ShuffleManager()
        manager.register_shuffle(1, num_map_partitions=2)
        manager.write_map_output(1, 0, {0: ["a"], 1: ["b"]})
        manager.write_map_output(1, 1, {0: ["c"]})
        records, size = manager.read_reduce_input(1, 0)
        assert sorted(records) == ["a", "c"]
        assert size > 0

    def test_read_before_all_maps_complete_raises(self):
        manager = ShuffleManager()
        manager.register_shuffle(2, num_map_partitions=2)
        manager.write_map_output(2, 0, {0: ["x"]})
        with pytest.raises(ShuffleError):
            manager.read_reduce_input(2, 0)

    def test_unregistered_shuffle_raises(self):
        manager = ShuffleManager()
        with pytest.raises(ShuffleError):
            manager.write_map_output(9, 0, {0: []})
        with pytest.raises(ShuffleError):
            manager.read_reduce_input(9, 0)

    def test_is_complete_tracks_map_outputs(self):
        manager = ShuffleManager()
        manager.register_shuffle(3, num_map_partitions=2)
        assert not manager.is_complete(3)
        manager.write_map_output(3, 0, {})
        assert not manager.is_complete(3)
        manager.write_map_output(3, 1, {})
        assert manager.is_complete(3)

    def test_is_complete_for_unknown_shuffle(self):
        assert not ShuffleManager().is_complete(42)

    def test_bytes_written_accumulates(self):
        manager = ShuffleManager()
        manager.register_shuffle(4, num_map_partitions=1)
        assert manager.bytes_written(4) == 0
        manager.write_map_output(4, 0, {0: list(range(100))})
        assert manager.bytes_written(4) > 0

    def test_remove_shuffle_clears_data(self):
        manager = ShuffleManager()
        manager.register_shuffle(5, num_map_partitions=1)
        manager.write_map_output(5, 0, {0: ["x"]})
        manager.remove_shuffle(5)
        assert not manager.is_complete(5)

    def test_clear_resets_everything(self):
        manager = ShuffleManager()
        manager.register_shuffle(6, num_map_partitions=1)
        manager.write_map_output(6, 0, {0: ["x"]})
        manager.clear()
        assert not manager.is_complete(6)

    def test_missing_bucket_reads_as_empty(self):
        manager = ShuffleManager()
        manager.register_shuffle(7, num_map_partitions=1)
        manager.write_map_output(7, 0, {0: ["only-partition-zero"]})
        records, _ = manager.read_reduce_input(7, 3)
        assert records == []

    def test_read_returns_a_snapshot(self):
        """Mutating the returned list must not corrupt manager state."""
        manager = ShuffleManager()
        manager.register_shuffle(8, num_map_partitions=1)
        manager.write_map_output(8, 0, {0: ["a", "b"]})
        records, _ = manager.read_reduce_input(8, 0)
        records.append("mutated")
        assert manager.read_reduce_input(8, 0)[0] == ["a", "b"]


class TestRangedReduceReads:
    """`read_reduce_input(map_range=...)`: disjoint map-output slices."""

    def build(self):
        manager = ShuffleManager()
        manager.register_shuffle(1, num_map_partitions=4)
        for m in range(4):
            manager.write_map_output(1, m, {0: [f"m{m}a", f"m{m}b"], 1: [f"m{m}"]})
        return manager

    def test_slices_partition_the_full_read(self):
        manager = self.build()
        full, full_bytes = manager.read_reduce_input(1, 0)
        sliced = []
        sliced_bytes = 0
        for lo, hi in [(0, 1), (1, 3), (3, 4)]:
            records, size = manager.read_reduce_input(1, 0, map_range=(lo, hi))
            sliced.extend(records)
            sliced_bytes += size
        assert sliced == full
        assert sliced_bytes == full_bytes

    def test_empty_range_reads_nothing(self):
        manager = self.build()
        records, size = manager.read_reduce_input(1, 0, map_range=(2, 2))
        assert records == [] and size == 0

    def test_reduce_partition_bytes_aggregates_buckets(self):
        manager = self.build()
        totals = manager.reduce_partition_bytes(1)
        assert set(totals) == {0, 1}
        assert totals[0] == manager.read_reduce_input(1, 0)[1]
        assert totals[1] == manager.read_reduce_input(1, 1)[1]

    def test_reduce_partition_map_bytes_covers_every_map(self):
        manager = self.build()
        per_map = manager.reduce_partition_map_bytes(1, 0)
        assert [m for m, _ in per_map] == [0, 1, 2, 3]
        assert sum(size for _, size in per_map) == \
            manager.read_reduce_input(1, 0)[1]

    def test_map_without_bucket_reports_zero(self):
        manager = ShuffleManager()
        manager.register_shuffle(2, num_map_partitions=2)
        manager.write_map_output(2, 0, {0: ["x"]})
        manager.write_map_output(2, 1, {})
        per_map = manager.reduce_partition_map_bytes(2, 0)
        assert per_map[1] == (1, 0)

    def test_sample_records_strides_across_buckets(self):
        manager = self.build()
        sample = manager.sample_records(1, 4)
        assert len(sample) == 4
        everything = manager.sample_records(1, 1000)
        assert len(everything) == 12  # full coverage when sample >= total
        assert set(sample) <= set(everything)


class TestLockLightReads:
    """The read path snapshots bucket refs under the lock and concatenates
    outside it (the discipline the write side already follows)."""

    def test_lock_not_held_during_concatenation(self):
        """With a multi-megabyte bucket, concatenation dominates the call;
        the manager lock must only be held for the (tiny) snapshot."""
        manager = ShuffleManager()
        manager.register_shuffle(1, num_map_partitions=1)
        manager.write_map_output(1, 0, {0: list(range(2_000_000))})

        held = []
        real_lock = manager._lock

        class ProbeLock:
            def __enter__(self):
                real_lock.acquire()
                self.entered = time.perf_counter()
                return self

            def __exit__(self, *exc):
                held.append(time.perf_counter() - self.entered)
                real_lock.release()

        manager._lock = ProbeLock()
        started = time.perf_counter()
        records, _ = manager.read_reduce_input(1, 0)
        elapsed = time.perf_counter() - started
        manager._lock = real_lock
        assert len(records) == 2_000_000
        # the snapshot under the lock must be a small fraction of the call
        assert sum(held) < elapsed / 2

    def test_concurrent_readers_and_writers_stay_consistent(self):
        """Hammer: parallel sub-partition reads while other shuffles are
        written and removed; every read sees complete, correct data."""
        manager = ShuffleManager()
        manager.register_shuffle(1, num_map_partitions=4)
        for m in range(4):
            manager.write_map_output(1, m, {0: [(m, i) for i in range(500)]})
        expected_full = manager.read_reduce_input(1, 0)[0]
        errors = []

        def reader():
            try:
                for _ in range(30):
                    parts = []
                    for lo, hi in [(0, 2), (2, 4)]:
                        parts.extend(manager.read_reduce_input(
                            1, 0, map_range=(lo, hi))[0])
                    assert parts == expected_full
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def writer(base):
            # each writer owns a disjoint shuffle-id range, matching the
            # context's globally unique _next_shuffle_id allocation — two
            # producers never register/remove the same shuffle id
            try:
                for round_index in range(30):
                    shuffle_id = base + round_index
                    manager.register_shuffle(shuffle_id, num_map_partitions=1)
                    manager.write_map_output(shuffle_id, 0,
                                             {0: list(range(200))})
                    manager.remove_shuffle(shuffle_id)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)] + \
                  [threading.Thread(target=writer, args=(base,))
                   for base in (100, 200)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestBlockStore:
    def test_put_get_roundtrip(self):
        store = BlockStore()
        store.put(1, 0, ["a", "b"])
        assert store.get(1, 0) == ["a", "b"]

    def test_miss_returns_none_and_counts(self):
        store = BlockStore()
        assert store.get(1, 0) is None
        assert store.stats()["misses"] == 1

    def test_hit_counts(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.get(1, 0)
        assert store.stats()["hits"] == 1

    def test_contains(self):
        store = BlockStore()
        store.put(2, 1, [1, 2])
        assert store.contains(2, 1)
        assert not store.contains(2, 0)

    def test_overwrite_same_block(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.put(1, 0, [2, 3])
        assert store.get(1, 0) == [2, 3]
        assert store.stats()["blocks"] == 1

    def test_evict_dataset(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.put(1, 1, [2])
        store.put(2, 0, [3])
        assert store.evict_dataset(1) == 2
        assert not store.contains(1, 0)
        assert store.contains(2, 0)

    def test_lru_eviction_under_budget(self):
        store = BlockStore(memory_budget_bytes=600)
        store.put(1, 0, list(range(100)))
        store.put(1, 1, list(range(100)))
        store.put(1, 2, list(range(100)))
        stats = store.stats()
        assert stats["evictions"] >= 1
        assert stats["bytes_stored"] <= 600

    def test_lru_keeps_recently_used_block(self):
        store = BlockStore(memory_budget_bytes=900)
        store.put(1, 0, list(range(100)))
        store.put(1, 1, list(range(100)))
        store.get(1, 0)  # touch block 0 so block 1 is the LRU victim
        store.put(1, 2, list(range(100)))
        assert store.contains(1, 0)

    def test_clear(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.clear()
        assert store.stats()["blocks"] == 0
        assert store.stats()["bytes_stored"] == 0
