"""Shuffle manager and block store (cache) behaviour."""

from __future__ import annotations

import pytest

from repro.engine.shuffle import ShuffleManager, estimate_bytes
from repro.engine.storage import BlockStore
from repro.errors import ShuffleError


class TestEstimateBytes:
    def test_empty_is_zero(self):
        assert estimate_bytes([]) == 0

    def test_positive_for_any_records(self):
        assert estimate_bytes([1, 2, 3]) > 0

    def test_scales_roughly_with_count(self):
        small = estimate_bytes([{"a": 1}] * 10, compressed=False)
        large = estimate_bytes([{"a": 1}] * 1000, compressed=False)
        assert large > small * 50

    def test_compression_reduces_estimate(self):
        records = [{"field": i} for i in range(500)]
        assert estimate_bytes(records, compressed=True) < \
            estimate_bytes(records, compressed=False)


class TestShuffleManager:
    def test_write_then_read_roundtrip(self):
        manager = ShuffleManager()
        manager.register_shuffle(1, num_map_partitions=2)
        manager.write_map_output(1, 0, {0: ["a"], 1: ["b"]})
        manager.write_map_output(1, 1, {0: ["c"]})
        records, size = manager.read_reduce_input(1, 0)
        assert sorted(records) == ["a", "c"]
        assert size > 0

    def test_read_before_all_maps_complete_raises(self):
        manager = ShuffleManager()
        manager.register_shuffle(2, num_map_partitions=2)
        manager.write_map_output(2, 0, {0: ["x"]})
        with pytest.raises(ShuffleError):
            manager.read_reduce_input(2, 0)

    def test_unregistered_shuffle_raises(self):
        manager = ShuffleManager()
        with pytest.raises(ShuffleError):
            manager.write_map_output(9, 0, {0: []})
        with pytest.raises(ShuffleError):
            manager.read_reduce_input(9, 0)

    def test_is_complete_tracks_map_outputs(self):
        manager = ShuffleManager()
        manager.register_shuffle(3, num_map_partitions=2)
        assert not manager.is_complete(3)
        manager.write_map_output(3, 0, {})
        assert not manager.is_complete(3)
        manager.write_map_output(3, 1, {})
        assert manager.is_complete(3)

    def test_is_complete_for_unknown_shuffle(self):
        assert not ShuffleManager().is_complete(42)

    def test_bytes_written_accumulates(self):
        manager = ShuffleManager()
        manager.register_shuffle(4, num_map_partitions=1)
        assert manager.bytes_written(4) == 0
        manager.write_map_output(4, 0, {0: list(range(100))})
        assert manager.bytes_written(4) > 0

    def test_remove_shuffle_clears_data(self):
        manager = ShuffleManager()
        manager.register_shuffle(5, num_map_partitions=1)
        manager.write_map_output(5, 0, {0: ["x"]})
        manager.remove_shuffle(5)
        assert not manager.is_complete(5)

    def test_clear_resets_everything(self):
        manager = ShuffleManager()
        manager.register_shuffle(6, num_map_partitions=1)
        manager.write_map_output(6, 0, {0: ["x"]})
        manager.clear()
        assert not manager.is_complete(6)

    def test_missing_bucket_reads_as_empty(self):
        manager = ShuffleManager()
        manager.register_shuffle(7, num_map_partitions=1)
        manager.write_map_output(7, 0, {0: ["only-partition-zero"]})
        records, _ = manager.read_reduce_input(7, 3)
        assert records == []


class TestBlockStore:
    def test_put_get_roundtrip(self):
        store = BlockStore()
        store.put(1, 0, ["a", "b"])
        assert store.get(1, 0) == ["a", "b"]

    def test_miss_returns_none_and_counts(self):
        store = BlockStore()
        assert store.get(1, 0) is None
        assert store.stats()["misses"] == 1

    def test_hit_counts(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.get(1, 0)
        assert store.stats()["hits"] == 1

    def test_contains(self):
        store = BlockStore()
        store.put(2, 1, [1, 2])
        assert store.contains(2, 1)
        assert not store.contains(2, 0)

    def test_overwrite_same_block(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.put(1, 0, [2, 3])
        assert store.get(1, 0) == [2, 3]
        assert store.stats()["blocks"] == 1

    def test_evict_dataset(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.put(1, 1, [2])
        store.put(2, 0, [3])
        assert store.evict_dataset(1) == 2
        assert not store.contains(1, 0)
        assert store.contains(2, 0)

    def test_lru_eviction_under_budget(self):
        store = BlockStore(memory_budget_bytes=600)
        store.put(1, 0, list(range(100)))
        store.put(1, 1, list(range(100)))
        store.put(1, 2, list(range(100)))
        stats = store.stats()
        assert stats["evictions"] >= 1
        assert stats["bytes_stored"] <= 600

    def test_lru_keeps_recently_used_block(self):
        store = BlockStore(memory_budget_bytes=900)
        store.put(1, 0, list(range(100)))
        store.put(1, 1, list(range(100)))
        store.get(1, 0)  # touch block 0 so block 1 is the LRU victim
        store.put(1, 2, list(range(100)))
        assert store.contains(1, 0)

    def test_clear(self):
        store = BlockStore()
        store.put(1, 0, [1])
        store.clear()
        assert store.stats()["blocks"] == 0
        assert store.stats()["bytes_stored"] == 0
