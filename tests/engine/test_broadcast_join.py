"""Cost-based join strategy selection and adaptive re-optimization.

The parity matrix runs every join variant under the broadcast hash-join and
shuffle-cogroup strategies over empty sides, duplicate keys and skewed key
distributions, asserting identical sorted results.  Further sections pin the
plan shapes (rule firing, thresholds, both build sides), the adaptive
runtime switch on a mis-estimated join, and the ``coalesce_shuffle`` rule.
"""

from __future__ import annotations

import random

import pytest

from repro.config import EngineConfig
from repro.engine import EngineContext
from repro.engine.plan import BroadcastJoinNode, CoGroupNode, count_nodes

JOIN_VARIANTS = ("join", "left_outer_join", "right_outer_join",
                 "full_outer_join", "subtract_by_key")

DATASETS = {
    "plain": ([(k % 6, f"L{k}") for k in range(40)],
              [(k % 9, f"R{k}") for k in range(15)]),
    "empty-right": ([(1, "a"), (2, "b")], []),
    "empty-left": ([], [(1, "x"), (3, "y")]),
    "duplicate-keys": ([(1, "a"), (1, "b"), (2, "c"), (2, "d")],
                       [(1, "x"), (1, "y"), (3, "z")]),
    "skewed": ([(0, f"L{k}") for k in range(60)] + [(5, "rare")],
               [(0, "hot"), (5, "cold"), (7, "unmatched")]),
    "none-values": ([(1, None), (2, "b")], [(1, None), (4, None)]),
}


def broadcast_engine(**overrides) -> EngineContext:
    return EngineContext(EngineConfig(num_workers=2, default_parallelism=4,
                                      seed=1, **overrides))


def shuffle_engine(**overrides) -> EngineContext:
    return EngineContext(EngineConfig(num_workers=2, default_parallelism=4,
                                      seed=1, broadcast_threshold_bytes=0,
                                      **overrides))


def run_join(make_engine, left_data, right_data, variant,
             swap_sizes=False):
    with make_engine() as ctx:
        left = ctx.parallelize(left_data, 1 if swap_sizes else 3) \
            if left_data else ctx.empty()
        right = ctx.parallelize(right_data, 2) if right_data else ctx.empty()
        joined = getattr(left, variant)(right)
        result = sorted(map(repr, joined.collect()))
        shuffle_stages = sum(1 for job in ctx.metrics.jobs
                             for stage in job.stages if stage.is_shuffle_map)
    return result, shuffle_stages


# ---------------------------------------------------------------------------
# Result parity: broadcast and shuffle strategies agree on every variant
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", JOIN_VARIANTS)
@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
def test_parity_broadcast_vs_shuffle(variant, dataset_name):
    left_data, right_data = DATASETS[dataset_name]
    broadcast, broadcast_stages = run_join(
        broadcast_engine, left_data, right_data, variant)
    shuffled, shuffled_stages = run_join(
        shuffle_engine, left_data, right_data, variant)
    assert broadcast == shuffled
    assert broadcast_stages == 0
    if left_data and right_data:
        assert shuffled_stages == 2


@pytest.mark.parametrize("variant", JOIN_VARIANTS)
def test_parity_with_random_keys(variant):
    rng = random.Random(7)
    left_data = [(rng.randrange(25), rng.randrange(1000)) for _ in range(300)]
    right_data = [(rng.randrange(30), rng.randrange(1000)) for _ in range(40)]
    broadcast, _ = run_join(broadcast_engine, left_data, right_data, variant)
    shuffled, _ = run_join(shuffle_engine, left_data, right_data, variant)
    assert broadcast == shuffled


def test_broadcast_left_build_side_parity():
    """A small LEFT side is broadcast too, including for right_outer (whose
    preserved side then streams) and full_outer (extra unmatched pass)."""
    left_data = [(1, "a"), (2, "b")]
    right_data = [(k % 10, k) for k in range(200)]
    for variant in ("join", "right_outer_join", "full_outer_join"):
        with broadcast_engine() as ctx:
            joined = getattr(ctx.parallelize(left_data, 2), variant)(
                ctx.parallelize(right_data, 4))
            result = ctx.optimizer.optimize(joined.plan)
            nodes = [n for n in iter_nodes(result.plan)
                     if isinstance(n, BroadcastJoinNode)]
            assert len(nodes) == 1
            assert nodes[0].broadcast_side == "left"
            broadcast = sorted(map(repr, joined.collect()))
        with shuffle_engine() as ctx:
            joined = getattr(ctx.parallelize(left_data, 2), variant)(
                ctx.parallelize(right_data, 4))
            assert sorted(map(repr, joined.collect())) == broadcast


# ---------------------------------------------------------------------------
# Plan shape and thresholds
# ---------------------------------------------------------------------------


class TestBroadcastSelection:
    def test_rule_fires_and_is_reported(self):
        with broadcast_engine() as ctx:
            joined = ctx.parallelize([(1, 2)] * 50, 4).join(
                ctx.parallelize([(1, 3)], 2))
            result = ctx.optimizer.optimize(joined.plan)
            assert "broadcast_join" in result.applied
            assert count_nodes(result.plan,
                               lambda n: isinstance(n, CoGroupNode)) == 0
            assert "broadcast_join" in joined.explain()

    def test_zero_threshold_disables_broadcast(self):
        with shuffle_engine() as ctx:
            joined = ctx.parallelize([(1, 2)] * 50, 4).join(
                ctx.parallelize([(1, 3)], 2))
            result = ctx.optimizer.optimize(joined.plan)
            assert "broadcast_join" not in result.applied

    def test_both_sides_above_threshold_keep_the_shuffle(self):
        big = [(k % 40, "payload" * 20) for k in range(4000)]
        with broadcast_engine(broadcast_threshold_bytes=1000) as ctx:
            joined = ctx.parallelize(big, 4).join(ctx.parallelize(big, 4))
            result = ctx.optimizer.optimize(joined.plan)
            assert "broadcast_join" not in result.applied

    def test_smaller_side_is_chosen_as_build(self):
        with broadcast_engine() as ctx:
            small = ctx.parallelize([(1, "s")], 1)
            big = ctx.parallelize([(k % 5, k) for k in range(500)], 4)
            result = ctx.optimizer.optimize(big.join(small).plan)
            node = next(n for n in iter_nodes(result.plan)
                        if isinstance(n, BroadcastJoinNode))
            assert node.broadcast_side == "right"
            result = ctx.optimizer.optimize(small.join(big).plan)
            node = next(n for n in iter_nodes(result.plan)
                        if isinstance(n, BroadcastJoinNode))
            assert node.broadcast_side == "left"

    def test_unknown_stats_keep_the_shuffle(self):
        big = [(k % 20, "payload" * 50) for k in range(2000)]
        with broadcast_engine(broadcast_threshold_bytes=1000) as ctx:
            opaque = ctx.parallelize([(1, "x")], 2).map_partitions(
                lambda it: list(it))  # unknown output stats: never broadcast
            joined = ctx.parallelize(big, 2).join(opaque)
            result = ctx.optimizer.optimize(joined.plan)
            assert "broadcast_join" not in result.applied

    def test_broadcast_join_reduces_shuffle_bytes(self):
        big = [(k % 100, "payload-%05d" % k) for k in range(20000)]
        small = [(k, "dim-%d" % k) for k in range(100)]

        def totals(make_engine):
            with make_engine() as ctx:
                joined = ctx.parallelize(big, 4).join(ctx.parallelize(small, 2))
                result = sorted(joined.collect())
                moved = sum(job.shuffle_bytes for job in ctx.metrics.jobs)
            return result, moved

        broadcast_result, broadcast_bytes = totals(broadcast_engine)
        shuffle_result, shuffle_bytes = totals(shuffle_engine)
        assert broadcast_result == shuffle_result
        assert broadcast_bytes < shuffle_bytes / 5


# ---------------------------------------------------------------------------
# Adaptive re-optimization
# ---------------------------------------------------------------------------


class TestAdaptiveReoptimization:
    BIG = [(k % 300, "payload-%06d" % k) for k in range(15000)]
    MISESTIMATED = [(k % 300, k) for k in range(15000)]

    def _run(self, adaptive):
        """A join whose small side the static estimator gets badly wrong:
        the filter keeps ~0.5% of records but is costed at 50%."""
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1,
                              adaptive_enabled=adaptive,
                              broadcast_threshold_bytes=10_000)
        with EngineContext(config) as ctx:
            left = ctx.parallelize(self.BIG, 4)
            right = ctx.parallelize(self.MISESTIMATED, 4).filter(
                lambda kv: kv[1] % 200 == 0)
            joined = left.join(right)
            result = sorted(joined.collect())
            job = ctx.metrics.jobs[-1]
            moved = sum(j.shuffle_bytes for j in ctx.metrics.jobs)
            map_stages = sum(1 for j in ctx.metrics.jobs
                             for s in j.stages if s.is_shuffle_map)
        return result, moved, map_stages, job.adaptive_replans

    def test_static_estimate_keeps_the_shuffle(self):
        result, moved, map_stages, replans = self._run(adaptive=False)
        assert replans == 0
        assert map_stages == 2  # both sides shuffled

    def test_adaptive_switches_to_broadcast_at_runtime(self):
        static_result, static_moved, _, _ = self._run(adaptive=False)
        result, moved, map_stages, replans = self._run(adaptive=True)
        assert result == static_result
        assert replans >= 1
        # only the (actually tiny) mis-estimated side's map stage ran before
        # the plan switched; the big side's shuffle never executed
        assert map_stages == 1
        assert moved < static_moved / 10

    def test_adaptive_replans_counted_in_metrics_summary(self):
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1,
                              broadcast_threshold_bytes=10_000)
        with EngineContext(config) as ctx:
            left = ctx.parallelize(self.BIG, 4)
            right = ctx.parallelize(self.MISESTIMATED, 4).filter(
                lambda kv: kv[1] % 200 == 0)
            left.join(right).collect()
            assert ctx.metrics.summary()["adaptive_replans"] >= 1

    def test_completed_shuffles_are_not_replanned_away(self):
        """Once both sides shuffled, re-running the action keeps reusing the
        shuffle output instead of rewriting to broadcast."""
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1,
                              broadcast_threshold_bytes=10_000)
        with EngineContext(config) as ctx:
            left = ctx.parallelize(self.BIG, 4)
            right = ctx.parallelize(self.MISESTIMATED, 4)  # both sides big
            joined = left.join(right)
            first = sorted(joined.collect())
            stages_after_first = sum(1 for j in ctx.metrics.jobs
                                     for s in j.stages if s.is_shuffle_map)
            assert sorted(joined.collect()) == first
            stages_after_second = sum(1 for j in ctx.metrics.jobs
                                      for s in j.stages if s.is_shuffle_map)
            assert stages_after_second == stages_after_first


# ---------------------------------------------------------------------------
# coalesce_shuffle
# ---------------------------------------------------------------------------


class TestCoalesceShuffle:
    def test_disabled_by_default(self):
        with broadcast_engine() as ctx:
            ds = (ctx.range(2000, num_partitions=8).map(lambda x: (x % 5, 1))
                  .reduce_by_key(lambda a, b: a + b, 8))
            assert "coalesce_shuffle" not in ctx.optimizer.optimize(ds.plan).applied

    def test_small_shuffle_coalesces_with_identical_results(self):
        def pipeline(ctx):
            return (ctx.range(2000, num_partitions=8).map(lambda x: (x % 5, 1))
                    .reduce_by_key(lambda a, b: a + b, 8))

        with broadcast_engine(target_partition_bytes=64 * 1024) as ctx:
            ds = pipeline(ctx)
            result = ctx.optimizer.optimize(ds.plan)
            assert "coalesce_shuffle" in result.applied
            executable = ctx._executable_for(ds)
            assert executable.num_partitions < 8
            coalesced = dict(ds.collect())
        with shuffle_engine() as ctx:
            assert dict(pipeline(ctx).collect()) == coalesced

    def test_large_shuffle_keeps_partitions(self):
        with broadcast_engine(target_partition_bytes=16) as ctx:
            ds = (ctx.range(2000, num_partitions=8).map(lambda x: (x % 997, x))
                  .group_by_key(8))
            assert "coalesce_shuffle" not in ctx.optimizer.optimize(ds.plan).applied

    def test_sort_partitions_never_coalesced(self):
        with broadcast_engine(target_partition_bytes=1024 * 1024) as ctx:
            ds = ctx.range(100, num_partitions=4).sort_by(lambda x: -x)
            assert "coalesce_shuffle" not in ctx.optimizer.optimize(ds.plan).applied
            assert ds.collect() == sorted(range(100), reverse=True)

    def test_repartition_coalesces_with_round_robin(self):
        with broadcast_engine(target_partition_bytes=1024 * 1024) as ctx:
            ds = ctx.range(500, num_partitions=4).repartition(8)
            result = ctx.optimizer.optimize(ds.plan)
            assert "coalesce_shuffle" in result.applied
            assert sorted(ds.collect()) == list(range(500))


class TestBroadcastBuildReuse:
    """Collected broadcast build sides are cached per build dataset."""

    def fact_and_dim(self, ctx):
        fact = ctx.parallelize([(i % 10, i) for i in range(2000)], 4)
        dim = ctx.parallelize([(i, f"d{i}") for i in range(10)], 2)
        return fact, dim

    @staticmethod
    def broadcast_jobs(ctx):
        return sum(1 for job in ctx.metrics.jobs
                   if job.description.startswith("broadcast"))

    def test_second_join_reuses_the_collected_build(self):
        with broadcast_engine() as ctx:
            fact, dim = self.fact_and_dim(ctx)
            first = fact.join(dim).count()
            assert self.broadcast_jobs(ctx) == 1
            second = fact.map_values(lambda v: v * 2).join(dim).count()
            assert first == second == 2000
            # no second nested collection job ran; the reuse was counted
            assert self.broadcast_jobs(ctx) == 1
            assert ctx.metrics.summary()["broadcast_reuses"] == 1

    def test_unpersist_invalidates_the_cached_build(self):
        with broadcast_engine() as ctx:
            fact, dim = self.fact_and_dim(ctx)
            fact.join(dim).count()
            assert any(key[0] == dim.id for key in ctx.broadcast_builds)
            dim.unpersist()
            assert not any(key[0] == dim.id for key in ctx.broadcast_builds)
            # the next join re-collects and re-caches
            fact.map_values(str).join(dim).count()
            assert self.broadcast_jobs(ctx) == 2
            assert any(key[0] == dim.id for key in ctx.broadcast_builds)

    def test_stop_clears_the_build_cache(self):
        ctx = broadcast_engine()
        fact, dim = self.fact_and_dim(ctx)
        fact.join(dim).count()
        assert ctx.broadcast_builds
        ctx.stop()
        assert not ctx.broadcast_builds

    def test_key_set_and_key_values_cached_separately(self):
        """An outer join preserving the build side collects both kinds."""
        with broadcast_engine() as ctx:
            fact, dim = self.fact_and_dim(ctx)
            fact.right_outer_join(dim).count()
            kinds = {key[1] for key in ctx.broadcast_builds}
            assert kinds == {"key_values", "key_set"}

    def test_reused_build_produces_identical_results(self):
        with broadcast_engine() as ctx:
            fact, dim = self.fact_and_dim(ctx)
            first = sorted(fact.join(dim).collect())
            second = sorted(fact.join(dim).collect())
            third = sorted(fact.map_values(lambda v: v).join(dim).collect())
            assert first == second
            assert sorted((k, (v, d)) for k, (v, d) in third) == first


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def iter_nodes(node):
    yield node
    for child in node.children:
        yield from iter_nodes(child)
