"""Narrow transformations and basic actions of the dataset API."""

from __future__ import annotations

import pytest

from repro.errors import PlanError


class TestCreation:
    def test_parallelize_collect_roundtrip(self, engine):
        data = list(range(50))
        assert engine.parallelize(data, 4).collect() == data

    def test_parallelize_respects_partition_count(self, engine):
        ds = engine.parallelize(range(10), 3)
        assert ds.num_partitions == 3

    def test_parallelize_defaults_partitions_to_config(self, engine):
        ds = engine.parallelize(range(100))
        assert ds.num_partitions == engine.config.default_parallelism

    def test_parallelize_empty_collection(self, engine):
        assert engine.parallelize([], 1).collect() == []

    def test_parallelize_fewer_records_than_partitions(self, engine):
        ds = engine.parallelize([1, 2], 8)
        assert sorted(ds.collect()) == [1, 2]

    def test_range_matches_builtin(self, engine):
        assert engine.range(5, 20, 3).collect() == list(range(5, 20, 3))

    def test_range_single_argument(self, engine):
        assert engine.range(7).collect() == list(range(7))

    def test_empty_dataset(self, engine):
        assert engine.empty().count() == 0

    def test_zero_partition_dataset_rejected(self, engine):
        with pytest.raises(PlanError):
            engine.parallelize([1], 0)


class TestMapFilter:
    def test_map(self, engine):
        assert engine.parallelize([1, 2, 3], 2).map(lambda x: x * 10).collect() == \
            [10, 20, 30]

    def test_filter(self, engine):
        result = engine.range(20, num_partitions=4).filter(lambda x: x % 2 == 0).collect()
        assert result == list(range(0, 20, 2))

    def test_map_then_filter_pipeline(self, engine):
        result = (engine.range(10, num_partitions=3)
                  .map(lambda x: x * x)
                  .filter(lambda x: x > 20)
                  .collect())
        assert result == [25, 36, 49, 64, 81]

    def test_flat_map(self, engine):
        result = engine.parallelize(["a b", "c"], 2).flat_map(str.split).collect()
        assert result == ["a", "b", "c"]

    def test_flat_map_empty_outputs(self, engine):
        result = engine.range(6, num_partitions=2).flat_map(
            lambda x: [x] * (x % 2)).collect()
        assert result == [1, 3, 5]

    def test_map_partitions(self, engine):
        result = engine.range(10, num_partitions=2).map_partitions(
            lambda it: [sum(it)]).collect()
        assert sum(result) == sum(range(10))
        assert len(result) == 2

    def test_map_partitions_with_index(self, engine):
        result = engine.range(8, num_partitions=4).map_partitions_with_index(
            lambda index, it: [(index, len(list(it)))]).collect()
        assert sorted(result) == [(0, 2), (1, 2), (2, 2), (3, 2)]

    def test_laziness_no_execution_until_action(self, engine):
        calls = []
        engine.parallelize([1, 2, 3], 1).map(lambda x: calls.append(x) or x)
        assert calls == []


class TestKeyValueNarrow:
    def test_key_by(self, engine):
        assert engine.parallelize([3, 4], 1).key_by(lambda x: x % 2).collect() == \
            [(1, 3), (0, 4)]

    def test_keys_values(self, engine):
        pairs = engine.parallelize([(1, "a"), (2, "b")], 2)
        assert pairs.keys().collect() == [1, 2]
        assert pairs.values().collect() == ["a", "b"]

    def test_map_values(self, engine):
        pairs = engine.parallelize([(1, 2), (3, 4)], 2)
        assert pairs.map_values(lambda v: v * 10).collect() == [(1, 20), (3, 40)]

    def test_flat_map_values(self, engine):
        pairs = engine.parallelize([("a", [1, 2]), ("b", [])], 1)
        assert pairs.flat_map_values(lambda v: v).collect() == [("a", 1), ("a", 2)]


class TestStructural:
    def test_union(self, engine):
        left = engine.parallelize([1, 2], 2)
        right = engine.parallelize([3, 4], 1)
        union = left.union(right)
        assert sorted(union.collect()) == [1, 2, 3, 4]
        assert union.num_partitions == 3

    def test_union_with_empty(self, engine):
        ds = engine.parallelize([1, 2], 1).union(engine.empty())
        assert sorted(ds.collect()) == [1, 2]

    def test_sample_fraction_zero_and_one(self, engine):
        ds = engine.range(100, num_partitions=4)
        assert ds.sample(0.0).collect() == []
        assert ds.sample(1.0).count() == 100

    def test_sample_is_deterministic_for_seed(self, engine):
        ds = engine.range(1000, num_partitions=4)
        assert ds.sample(0.3, seed=9).collect() == ds.sample(0.3, seed=9).collect()

    def test_sample_rejects_bad_fraction(self, engine):
        with pytest.raises(PlanError):
            engine.range(10).sample(1.5)

    def test_coalesce_reduces_partitions(self, engine):
        ds = engine.range(40, num_partitions=8).coalesce(3)
        assert ds.num_partitions == 3
        assert sorted(ds.collect()) == list(range(40))

    def test_coalesce_to_more_partitions_is_noop(self, engine):
        ds = engine.range(10, num_partitions=2)
        assert ds.coalesce(5) is ds

    def test_coalesce_rejects_zero(self, engine):
        with pytest.raises(PlanError):
            engine.range(10, num_partitions=2).coalesce(0)

    def test_glom_returns_one_list_per_partition(self, engine):
        ds = engine.range(9, num_partitions=3).glom()
        lists = ds.collect()
        assert len(lists) == 3
        assert sorted(x for chunk in lists for x in chunk) == list(range(9))

    def test_zip_with_index_is_global(self, engine):
        ds = engine.parallelize(list("abcdef"), 3).zip_with_index()
        assert ds.collect() == [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4), ("f", 5)]

    def test_set_name_and_repr(self, engine):
        ds = engine.range(3).set_name("my-data")
        assert "my-data" in repr(ds)
