"""Executor concurrency: serialized metrics mutation, read/write semantics."""

from __future__ import annotations

import threading
import time

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.dataset import TaskContext
from repro.engine.executor import Executor, Task
from repro.engine.metrics import StageMetrics


class _CountingTask(Task):
    """A task that reads a fixed number of records."""

    def __init__(self, task_id: str, partition: int, records: int):
        super().__init__(task_id, stage_id=0, partition=partition)
        self._records = records

    def run(self, task_context: TaskContext):
        task_context.records_read += self._records
        return self._records


class _OverlapDetectingStage(StageMetrics):
    """A stage whose ``add_task`` detects concurrent (unserialized) entry.

    The deliberately non-atomic enter/sleep/exit window makes an unguarded
    concurrent call from pool workers almost certain to be observed; the
    executor's metrics lock must serialize the calls so no overlap occurs.
    """

    def __init__(self):
        super().__init__(stage_id=0, name="overlap-probe")
        self.overlaps = 0
        self._entered = False

    def add_task(self, task):
        if self._entered:
            self.overlaps += 1
        self._entered = True
        time.sleep(0.002)
        super().add_task(task)
        self._entered = False


class TestStageMetricsThreadSafety:
    def test_concurrent_add_task_is_serialized(self):
        executor = Executor(EngineConfig(num_workers=8, default_parallelism=8))
        stage = _OverlapDetectingStage()
        tasks = [_CountingTask(f"t{i}", i, records=10) for i in range(32)]
        results = executor.execute_stage(tasks, stage)
        assert stage.overlaps == 0
        assert len(results) == 32
        assert stage.num_tasks == 32
        assert stage.records_read == 320

    def test_aggregates_consistent_under_contention(self):
        """Many workers, many tasks: stage aggregates must add up exactly."""
        executor = Executor(EngineConfig(num_workers=8, default_parallelism=8))
        stage = StageMetrics(stage_id=1, name="contention")
        tasks = [_CountingTask(f"t{i}", i, records=i) for i in range(200)]
        executor.execute_stage(tasks, stage)
        assert stage.num_tasks == 200
        assert stage.records_read == sum(range(200))
        assert len(stage.tasks) == 200

    def test_executor_lock_held_per_call(self):
        """The lock object exists and is a real lock (regression guard)."""
        executor = Executor(EngineConfig(num_workers=2))
        assert isinstance(executor._metrics_lock, type(threading.Lock()))


class TestResultTaskMetricSemantics:
    def test_action_consumption_counts_as_reads_not_writes(self):
        with EngineContext(EngineConfig(num_workers=1, default_parallelism=4)) as ctx:
            ctx.range(100, num_partitions=4).count()
            job = ctx.metrics.jobs[-1]
            assert job.records_read == 100
            # nothing was materialised: no written records
            assert job.records_written == 0

    def test_shuffle_writes_still_counted(self):
        with EngineContext(EngineConfig(num_workers=1, default_parallelism=4)) as ctx:
            (ctx.range(100, num_partitions=4).map(lambda x: (x % 4, x))
             .group_by_key().collect())
            job = ctx.metrics.jobs[-1]
            shuffle_stages = [s for s in job.stages if s.is_shuffle_map]
            result_stages = [s for s in job.stages if not s.is_shuffle_map]
            assert sum(s.records_written for s in shuffle_stages) == 100
            assert sum(s.records_written for s in result_stages) == 0

    def test_cache_materialisation_counts_as_writes(self):
        with EngineContext(EngineConfig(num_workers=1, default_parallelism=2)) as ctx:
            ds = ctx.range(50, num_partitions=2).cache()
            ds.count()
            assert ctx.metrics.jobs[-1].records_written == 50
            ds.count()  # served from cache: reads it back, writes nothing
            assert ctx.metrics.jobs[-1].records_written == 0
            assert ctx.metrics.jobs[-1].cache_hits == 2
