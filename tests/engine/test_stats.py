"""The statistics layer: byte-estimate sampling, per-node plan annotations,
actual-size feedback from caches and completed shuffles, and the cost model.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import EngineConfig
from repro.engine import EngineContext, plan_cost
from repro.engine.shuffle import estimate_bytes
from repro.engine.stats import (AGGREGATE_RATIO, FILTER_SELECTIVITY,
                                KeyDistribution, StatsEstimate, format_bytes)


def make_engine(**overrides) -> EngineContext:
    return EngineContext(EngineConfig(num_workers=2, default_parallelism=4,
                                      seed=1, **overrides))


def annotated_plan(ctx, dataset):
    result = ctx.optimizer.optimize(dataset.plan)
    return result.plan


# ---------------------------------------------------------------------------
# estimate_bytes sampling (regression: head sampling skewed sorted data)
# ---------------------------------------------------------------------------


class TestEstimateBytes:
    def test_empty_is_zero(self):
        assert estimate_bytes([]) == 0

    def test_small_list_uses_every_record(self):
        records = ["x" * 50] * 5
        actual = len(pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL))
        assert estimate_bytes(records, compressed=False) == pytest.approx(
            actual, rel=0.5)

    def test_stride_sampling_not_biased_by_sorted_data(self):
        """Head sampling saw only the tiny records of this size-sorted list
        and under-estimated ~100x; the stride sample must stay within 2x."""
        records = [i for i in range(1000)] + \
            [("y%04d" % i) * 250 for i in range(1000)]  # distinct 2000-char rows
        actual = len(pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL))
        estimated = estimate_bytes(records, compressed=False)
        head_biased = estimate_bytes(records[:20], compressed=False) // len(
            records[:20]) * len(records)
        assert head_biased < actual / 50  # what the old sampling reported
        assert actual / 2 <= estimated <= actual * 2

    def test_stride_sampling_covers_heterogeneous_tail(self):
        # wide records in the last tenth of the bucket must show up in the
        # sample; the estimate stays in the right order of magnitude
        records = [1] * 900 + [("z%03d" % i) * 250 for i in range(100)]
        actual = len(pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL))
        estimated = estimate_bytes(records, compressed=False)
        assert actual / 3 <= estimated <= actual * 3

    def test_compression_ratio_applied(self):
        records = list(range(1000))
        assert estimate_bytes(records, compressed=True) < \
            estimate_bytes(records, compressed=False)


# ---------------------------------------------------------------------------
# StatsEstimate plumbing
# ---------------------------------------------------------------------------


class TestStatsEstimate:
    def test_scaled_loses_exactness(self):
        exact = StatsEstimate(rows=100, size_bytes=1000, exact=True)
        derived = exact.scaled(0.5)
        assert derived.rows == 50 and derived.size_bytes == 500
        assert not derived.exact

    def test_render_marks_estimates_with_tilde(self):
        assert StatsEstimate(10, 100, exact=True).render() == "10 rows, 100B"
        assert StatsEstimate(10, 100).render().startswith("~10 rows")

    def test_format_bytes_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KiB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MiB"


# ---------------------------------------------------------------------------
# Plan annotation
# ---------------------------------------------------------------------------


class TestPlanAnnotation:
    def test_source_rows_are_exact(self):
        with make_engine() as ctx:
            ds = ctx.range(500, num_partitions=4)
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.stats is not None
            assert ds.plan.stats.exact
            assert ds.plan.stats.rows == 500

    def test_filter_applies_selectivity(self):
        with make_engine() as ctx:
            ds = ctx.range(1000, num_partitions=4).filter(lambda x: x < 10)
            ctx.optimizer.estimator.annotate(ds.plan)
            source = ds.plan.child
            assert ds.plan.stats.rows == pytest.approx(
                source.stats.rows * FILTER_SELECTIVITY)
            assert not ds.plan.stats.exact

    def test_aggregate_applies_key_ratio(self):
        with make_engine() as ctx:
            ds = (ctx.range(1000, num_partitions=4)
                  .map(lambda x: (x % 5, x)).reduce_by_key(lambda a, b: a + b))
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.stats.rows == pytest.approx(1000 * AGGREGATE_RATIO)

    def test_map_partitions_output_is_unknown(self):
        with make_engine() as ctx:
            ds = ctx.range(100, num_partitions=2).map_partitions(
                lambda it: [sum(it)])
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.stats is None

    def test_cached_dataset_reports_actual_sizes(self):
        with make_engine() as ctx:
            cached = (ctx.range(300, num_partitions=3)
                      .map(lambda x: (x % 4, x))
                      .reduce_by_key(lambda a, b: a + b).cache())
            cached.count()  # materialise
            top = cached.map(lambda kv: kv[1])
            plan = annotated_plan(ctx, top)
            scan = plan.child  # cache_prune replaced the subtree by a scan
            assert scan.op == "cached_scan"
            assert scan.stats.exact
            assert scan.stats.rows == 4

    def test_completed_shuffle_feeds_actual_sizes_back(self):
        with make_engine() as ctx:
            reduced = (ctx.range(400, num_partitions=4)
                       .map(lambda x: (x % 3, 1))
                       .reduce_by_key(lambda a, b: a + b))
            reduced.collect()  # runs the (combined) shuffle
            plan = annotated_plan(ctx, reduced)
            # the aggregate node now reports the actual combined map output:
            # at most 3 keys x 4 map partitions, known exactly
            assert plan.stats.exact
            assert plan.stats.rows <= 12

    def test_explain_renders_row_and_byte_estimates(self):
        with make_engine() as ctx:
            ds = ctx.range(200, num_partitions=2).filter(lambda x: x % 2 == 0)
            text = ds.explain()
            assert "rows" in text
            assert "200 rows" in text
            assert "estimated cost:" in text


# ---------------------------------------------------------------------------
# Key distributions: distinct keys, heavy hitters, cardinality refinement
# ---------------------------------------------------------------------------


class TestKeyDistributions:
    def test_pair_source_distribution_sampled(self):
        pairs = [(i % 4, i) for i in range(200)]
        with make_engine() as ctx:
            ds = ctx.parallelize(pairs, 4).group_by_key(4)
            ctx.optimizer.estimator.annotate(ds.plan)
            distribution = ds.plan.key_stats
            assert distribution is not None
            assert distribution.distinct_keys == 4
            # 4 keys in uniform rotation: the top key holds ~25%
            assert distribution.max_share == pytest.approx(0.25, abs=0.05)

    def test_heavy_hitter_share_detected(self):
        pairs = [(0 if i % 10 < 8 else i % 7 + 1, i) for i in range(500)]
        with make_engine() as ctx:
            ds = ctx.parallelize(pairs, 4).group_by_key(4)
            ctx.optimizer.estimator.annotate(ds.plan)
            distribution = ds.plan.key_stats
            assert distribution.top_shares[0][0] == 0
            assert distribution.max_share == pytest.approx(0.8, abs=0.1)

    def test_group_by_cardinality_uses_distinct_keys(self):
        """Direct pair source: rows out ≈ distinct keys, not 20% of input."""
        pairs = [(i % 6, i) for i in range(600)]
        with make_engine() as ctx:
            ds = ctx.parallelize(pairs, 4).group_by_key(4)
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.stats.rows == 6

    def test_udf_map_blocks_source_sampling(self):
        """A UDF between source and shuffle: heuristics stay in charge."""
        with make_engine() as ctx:
            ds = (ctx.range(1000, num_partitions=4)
                  .map(lambda x: (x % 5, x)).group_by_key(4))
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.key_stats is None
            assert ds.plan.stats.rows == pytest.approx(1000 * AGGREGATE_RATIO)

    def test_completed_shuffle_distribution_is_exact_on_small_data(self):
        with make_engine() as ctx:
            ds = (ctx.range(200, num_partitions=4)
                  .map(lambda x: (x % 3, x)).group_by_key(4))
            ds.collect()
            ctx.optimizer.estimator.annotate(ds.plan)
            distribution = ds.plan.key_stats
            assert distribution is not None and distribution.exact
            assert distribution.distinct_keys == 3
            # and the group_by output cardinality follows the key count
            assert ds.plan.stats.rows == 3

    def test_non_pair_source_yields_no_distribution(self):
        with make_engine() as ctx:
            ds = ctx.range(100, num_partitions=2).group_by_key(2)
            # records are ints, not pairs: sampling must bail gracefully
            ctx.optimizer.estimator.annotate(ds.plan)
            assert ds.plan.key_stats is None

    def test_render(self):
        distribution = KeyDistribution(distinct_keys=12, top_shares=((0, 0.8),),
                                       sampled_records=100, exact=True)
        assert distribution.render() == "keys 12, hot 80%"
        estimated = KeyDistribution(distinct_keys=40, top_shares=((1, 0.1),),
                                    sampled_records=100)
        assert estimated.render().startswith("keys ~40")


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_shuffle_plans_cost_more_than_narrow_plans(self):
        with make_engine() as ctx:
            narrow = ctx.range(1000, num_partitions=4).map(lambda x: x + 1)
            wide = (ctx.range(1000, num_partitions=4)
                    .map(lambda x: (x % 7, x)).group_by_key())
            narrow_cost = ctx.optimizer.optimize(narrow.plan).cost
            wide_cost = ctx.optimizer.optimize(wide.plan).cost
            assert wide_cost > narrow_cost > 0

    def test_broadcast_plan_costs_less_than_shuffle_plan(self):
        data_big = [(i % 50, i) for i in range(5000)]
        data_small = [(i, "s") for i in range(20)]
        with make_engine() as ctx:
            joined = ctx.parallelize(data_big, 4).join(
                ctx.parallelize(data_small, 2))
            broadcast_cost = ctx.optimizer.optimize(joined.plan).cost
        with make_engine(broadcast_threshold_bytes=0) as ctx:
            joined = ctx.parallelize(data_big, 4).join(
                ctx.parallelize(data_small, 2))
            shuffle_cost = ctx.optimizer.optimize(joined.plan).cost
        assert broadcast_cost < shuffle_cost

    def test_unannotated_plan_costs_nothing(self):
        with make_engine() as ctx:
            ds = ctx.range(10, num_partitions=2).map_partitions(lambda it: it)
            ctx.optimizer.estimator.annotate(ds.plan)
            assert plan_cost(ds.plan) > 0  # the source below is known
