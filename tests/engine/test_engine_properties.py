"""Property-based tests of the engine's core invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner, RangePartitioner

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _make_engine() -> EngineContext:
    return EngineContext(EngineConfig(num_workers=1, default_parallelism=3, seed=0))


class TestDatasetAlgebraProperties:
    @_SETTINGS
    @given(data=st.lists(st.integers(-1000, 1000), max_size=200),
           partitions=st.integers(1, 7))
    def test_collect_preserves_order_and_content(self, data, partitions):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, partitions).collect() == data

    @_SETTINGS
    @given(data=st.lists(st.integers(-100, 100), max_size=150),
           partitions=st.integers(1, 6))
    def test_count_matches_len(self, data, partitions):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, partitions).count() == len(data)

    @_SETTINGS
    @given(data=st.lists(st.integers(-50, 50), max_size=120))
    def test_map_commutes_with_local_map(self, data):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, 4).map(lambda x: x * 2 + 1).collect() == \
                [x * 2 + 1 for x in data]

    @_SETTINGS
    @given(data=st.lists(st.integers(-50, 50), max_size=120))
    def test_filter_commutes_with_local_filter(self, data):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, 3).filter(lambda x: x % 3 == 0).collect() == \
                [x for x in data if x % 3 == 0]

    @_SETTINGS
    @given(data=st.lists(st.integers(0, 30), min_size=1, max_size=150),
           partitions=st.integers(1, 6))
    def test_distinct_matches_set(self, data, partitions):
        with _make_engine() as ctx:
            assert sorted(ctx.parallelize(data, partitions).distinct().collect()) == \
                sorted(set(data))

    @_SETTINGS
    @given(data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=150))
    def test_sum_matches_builtin(self, data):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, 4).sum() == sum(data)

    @_SETTINGS
    @given(data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=100),
           partitions=st.integers(1, 5))
    def test_sort_by_matches_sorted(self, data, partitions):
        with _make_engine() as ctx:
            assert ctx.parallelize(data, partitions).sort_by(lambda x: x).collect() == \
                sorted(data)

    @_SETTINGS
    @given(pairs=st.lists(st.tuples(st.integers(0, 8), st.integers(-20, 20)),
                          max_size=150),
           partitions=st.integers(1, 5))
    def test_reduce_by_key_matches_local_grouping(self, pairs, partitions):
        expected = {}
        for key, value in pairs:
            expected[key] = expected.get(key, 0) + value
        with _make_engine() as ctx:
            result = dict(ctx.parallelize(pairs, partitions)
                          .reduce_by_key(lambda a, b: a + b).collect())
        assert result == expected

    @_SETTINGS
    @given(data=st.lists(st.integers(0, 100), max_size=120),
           new_partitions=st.integers(1, 9))
    def test_repartition_preserves_multiset(self, data, new_partitions):
        with _make_engine() as ctx:
            result = ctx.parallelize(data, 3).repartition(new_partitions).collect()
        assert sorted(result) == sorted(data)

    @_SETTINGS
    @given(left=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9)), max_size=40),
           right=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 9)), max_size=40))
    def test_join_matches_nested_loop_join(self, left, right):
        expected = sorted((k, (lv, rv)) for k, lv in left for rk, rv in right if k == rk)
        with _make_engine() as ctx:
            result = sorted(ctx.parallelize(left, 2).join(
                ctx.parallelize(right, 3)).collect())
        assert result == expected

    @_SETTINGS
    @given(data=st.lists(st.integers(0, 1000), max_size=100),
           n=st.integers(0, 20))
    def test_take_is_prefix_of_collect(self, data, n):
        with _make_engine() as ctx:
            ds = ctx.parallelize(data, 4)
            assert ds.take(n) == ds.collect()[:n]


class TestPartitionerProperties:
    @_SETTINGS
    @given(keys=st.lists(st.one_of(st.integers(), st.text(max_size=12)), max_size=100),
           partitions=st.integers(1, 16))
    def test_hash_partitioner_within_bounds(self, keys, partitions):
        partitioner = HashPartitioner(partitions)
        assert all(0 <= partitioner.partition_for(key) < partitions for key in keys)

    @_SETTINGS
    @given(sample=st.lists(st.integers(-500, 500), min_size=1, max_size=100),
           partitions=st.integers(1, 8),
           probes=st.lists(st.integers(-1000, 1000), max_size=50))
    def test_range_partitioner_is_monotone(self, sample, partitions, probes):
        partitioner = RangePartitioner.from_sample(sample, partitions)
        ordered = sorted(probes)
        assigned = [partitioner.partition_for(key) for key in ordered]
        assert assigned == sorted(assigned)
