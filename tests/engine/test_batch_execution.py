"""Batch/record execution parity: vectorized mode is a pure optimization.

Every pipeline must produce identical results with batching disabled
(``batch_size=0``), with degenerate one-record batches (``batch_size=1``),
with an odd batch size that never divides the partition sizes evenly
(``batch_size=7``) and with the default batch size — and the record/byte
metrics (records read/written, shuffle bytes) must not depend on the
execution mode either.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.errors import ShuffleError

#: The batch sizes every parity scenario is evaluated under; 0 disables
#: batching entirely (the record-at-a-time reference execution).
BATCH_SIZES = (0, 1, 7, 1024)


def _ctx(batch_size: int, **overrides) -> EngineContext:
    config = EngineConfig(num_workers=2, default_parallelism=4, seed=3,
                          batch_size=batch_size, **overrides)
    return EngineContext(config)


def _run(scenario, batch_size: int, **overrides):
    """Run ``scenario(ctx)`` under one batch size; return (result, metrics)."""
    with _ctx(batch_size, **overrides) as ctx:
        result = scenario(ctx)
        summary = ctx.metrics.summary()
    return result, summary


#: Metric keys that must be identical whatever the execution mode is.
_MODE_INVARIANT = ("records_read", "records_written", "shuffle_bytes",
                   "cache_hits", "num_tasks", "num_stages")


def assert_parity(scenario, **overrides):
    """Assert result and metric parity of a scenario across batch sizes."""
    reference, reference_metrics = _run(scenario, batch_size=0, **overrides)
    for batch_size in BATCH_SIZES[1:]:
        result, metrics = _run(scenario, batch_size, **overrides)
        assert result == reference, f"results differ at batch_size={batch_size}"
        for key in _MODE_INVARIANT:
            assert metrics[key] == reference_metrics[key], \
                f"{key} differs at batch_size={batch_size}"


class TestNarrowParity:
    def test_map_filter_flat_map_chain(self):
        def scenario(ctx):
            return (ctx.range(500, num_partitions=4)
                    .map(lambda v: v * 3)
                    .filter(lambda v: v % 2 == 0)
                    .flat_map(lambda v: (v, -v))
                    .map(lambda v: v + 1)
                    .collect())
        assert_parity(scenario)

    def test_chain_without_optimizer_runs_unfused(self):
        def scenario(ctx):
            return (ctx.range(400, num_partitions=3)
                    .map(lambda v: v + 10)
                    .filter(lambda v: v % 5 != 0)
                    .collect())
        assert_parity(scenario, optimizer_rules=())

    def test_project_union_and_coalesce(self):
        def scenario(ctx):
            rows = ctx.parallelize(
                [{"id": i, "value": i * 2, "noise": "x"} for i in range(200)], 4)
            more = ctx.parallelize(
                [{"id": 1000 + i, "value": i, "noise": "y"} for i in range(50)], 2)
            return (rows.union(more).project(["id", "value"])
                    .coalesce(2).collect())
        assert_parity(scenario)

    def test_sample_keeps_the_same_records_per_seed(self):
        def scenario(ctx):
            return ctx.range(2_000, num_partitions=4).sample(0.3, seed=11).collect()
        assert_parity(scenario)

    def test_map_partitions_fallback(self):
        def scenario(ctx):
            return (ctx.range(300, num_partitions=4)
                    .map(lambda v: v + 1)
                    .map_partitions(lambda it: [sum(it)])
                    .collect())
        assert_parity(scenario)

    def test_take_first_and_count(self):
        def scenario(ctx):
            ds = ctx.range(1_000, num_partitions=5).filter(lambda v: v % 7 != 0)
            return (ds.take(13), ds.first(), ds.count())
        # early-stopping actions read ahead in whole batches, so record
        # counts legitimately differ for batch_size > 1; results never do,
        # and batch_size=1 reproduces the record path bit for bit
        reference, reference_metrics = _run(scenario, batch_size=0)
        for batch_size in BATCH_SIZES[1:]:
            result, metrics = _run(scenario, batch_size)
            assert result == reference
        _, one_metrics = _run(scenario, batch_size=1)
        for key in _MODE_INVARIANT:
            assert one_metrics[key] == reference_metrics[key]

    def test_cached_dataset_round_trip(self):
        def scenario(ctx):
            ds = ctx.range(600, num_partitions=4).map(lambda v: v * v).cache()
            first = ds.collect()      # computes and materialises the blocks
            second = ds.collect()     # must be served from the cache
            return (first, second)
        assert_parity(scenario)


class TestWideParity:
    def test_shuffled_dataset_group_by_key(self):
        def scenario(ctx):
            pairs = ctx.range(400, num_partitions=4).map(lambda v: (v % 13, v))
            grouped = pairs.group_by_key().map_values(sorted).collect()
            return sorted(grouped)
        assert_parity(scenario)

    def test_reduce_by_key_with_map_side_combine(self):
        def scenario(ctx):
            return sorted(
                ctx.range(900, num_partitions=4)
                .map(lambda v: (v % 31, 1))
                .reduce_by_key(lambda left, right: left + right)
                .collect())
        assert_parity(scenario)

    def test_distinct_repartition_and_sort(self):
        def scenario(ctx):
            ds = ctx.parallelize([v % 40 for v in range(500)], 4)
            return (sorted(ds.distinct().collect()),
                    sorted(ds.repartition(3).collect()),
                    ds.sort_by(lambda v: -v).collect())
        assert_parity(scenario)

    def test_cogrouped_dataset(self):
        def scenario(ctx):
            left = ctx.range(200, num_partitions=4).map(lambda v: (v % 10, v))
            right = ctx.range(60, num_partitions=3).map(lambda v: (v % 10, -v))
            cogrouped = left.cogroup(right).map(
                lambda pair: (pair[0], sorted(pair[1][0]), sorted(pair[1][1])))
            return sorted(cogrouped.collect())
        assert_parity(scenario)

    def test_shuffle_join_parity(self):
        def scenario(ctx):
            left = ctx.range(300, num_partitions=4).map(lambda v: (v % 20, v))
            right = ctx.range(80, num_partitions=2).map(lambda v: (v % 20, -v))
            return sorted(left.join(right).collect())
        # broadcast disabled: the join stays a shuffle cogroup
        assert_parity(scenario, broadcast_threshold_bytes=0)

    @pytest.mark.parametrize("how", ["join", "left_outer_join",
                                     "right_outer_join", "full_outer_join",
                                     "subtract_by_key"])
    def test_broadcast_join_parity(self, how):
        def scenario(ctx):
            big = ctx.range(400, num_partitions=4).map(lambda v: (v % 25, v))
            small = ctx.parallelize([(k, f"dim-{k}") for k in range(12)], 2)
            joined = getattr(big, how)(small)
            return sorted(joined.collect())
        # a generous threshold forces the broadcast lowering (including the
        # unmatched-build partition of the outer variants)
        assert_parity(scenario, broadcast_threshold_bytes=64 * 1024 * 1024)

    def test_shuffle_byte_accounting_is_mode_invariant(self):
        def scenario(ctx):
            pairs = ctx.range(600, num_partitions=4).map(lambda v: (v % 17, v))
            grouped = pairs.group_by_key().collect()
            jobs = ctx.metrics.jobs
            read = sum(s.shuffle_bytes_read for j in jobs for s in j.stages)
            written = sum(s.shuffle_bytes_written for j in jobs for s in j.stages)
            assert read == written > 0
            return sorted((key, sorted(values)) for key, values in grouped)
        assert_parity(scenario)


class TestBatchProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.lists(st.integers(-100, 100), max_size=120),
           batch_size=st.sampled_from([1, 2, 3, 5, 16]),
           num_partitions=st.integers(1, 5))
    def test_pipeline_parity_property(self, data, batch_size, num_partitions):
        def scenario(ctx):
            ds = (ctx.parallelize(data, num_partitions)
                  .map(lambda v: v * 2)
                  .filter(lambda v: v % 3 != 0)
                  .flat_map(lambda v: (v,) if v > 0 else (v, v)))
            return (ds.collect(),
                    sorted(ds.map(lambda v: (v % 5, 1))
                           .reduce_by_key(lambda a, b: a + b).collect()))
        reference, reference_metrics = _run(scenario, batch_size=0)
        result, metrics = _run(scenario, batch_size=batch_size)
        assert result == reference
        for key in _MODE_INVARIANT:
            assert metrics[key] == reference_metrics[key]

    def test_batches_processed_metric(self):
        def scenario(ctx):
            return (ctx.range(100, num_partitions=4)
                    .map(lambda v: (v % 5, v))
                    .group_by_key().count())
        _, record_metrics = _run(scenario, batch_size=0)
        assert record_metrics["batches_processed"] == 0
        _, batched_metrics = _run(scenario, batch_size=16)
        assert batched_metrics["batches_processed"] > 0
        # smaller batches -> strictly more batches for the same job
        _, tiny_metrics = _run(scenario, batch_size=1)
        assert tiny_metrics["batches_processed"] > \
            batched_metrics["batches_processed"]


class TestExecutorPool:
    def test_pool_persists_across_stages(self):
        with _ctx(batch_size=64) as ctx:
            executor = ctx.scheduler.executor
            ctx.range(100, num_partitions=4).map(lambda v: (v % 3, v)) \
                .group_by_key().count()
            pool = executor._pool
            assert pool is not None, "multi-task stages must use the pool"
            ctx.range(50, num_partitions=4).count()
            assert executor._pool is pool, "the pool must be reused, not rebuilt"

    def test_single_task_stage_does_not_build_a_pool(self):
        with _ctx(batch_size=64) as ctx:
            ctx.range(10, num_partitions=1).count()
            assert ctx.scheduler.executor._pool is None

    def test_stop_shuts_the_pool_down(self):
        ctx = _ctx(batch_size=64)
        ctx.range(100, num_partitions=4).count()
        executor = ctx.scheduler.executor
        assert executor._pool is not None
        ctx.stop()
        assert executor._pool is None

    def test_failed_stage_leaves_no_stragglers_in_the_pool(self):
        import time as _time
        from repro.errors import TaskError

        finished = []

        def work(partition, iterator):
            if partition == 0:
                raise RuntimeError("boom")
            _time.sleep(0.05)
            finished.append(partition)
            return iterator

        with _ctx(batch_size=16, max_task_retries=0) as ctx:
            ds = ctx.range(400, num_partitions=4).map_partitions_with_index(work)
            with pytest.raises(TaskError):
                ds.count()
            # the persistent pool must have settled every submitted task
            # before the stage error propagated: nothing may still be
            # running (or start later) against the dead stage
            settled = list(finished)
            _time.sleep(0.2)
            assert finished == settled

    def test_wall_clock_recorded_on_both_paths(self):
        for partitions in (1, 4):
            with _ctx(batch_size=64) as ctx:
                ctx.range(200, num_partitions=partitions).count()
                stage = ctx.metrics.jobs[-1].stages[-1]
                assert stage.wall_clock_s > 0.0


class TestShuffleManagerHygiene:
    def test_unregistered_shuffle_still_rejected(self):
        with _ctx(batch_size=8) as ctx:
            with pytest.raises(ShuffleError):
                ctx.shuffle_manager.write_map_output(999, 0, {0: [1, 2]})

    def test_reduce_bytes_equal_map_side_measurements(self):
        with _ctx(batch_size=8) as ctx:
            manager = ctx.shuffle_manager
            manager.register_shuffle(7, num_map_partitions=2)
            written = manager.write_map_output(7, 0, {0: [1, 2, 3], 1: [4]})
            written += manager.write_map_output(7, 1, {0: [5], 1: [6, 7]})
            read = sum(manager.read_reduce_input(7, p)[1] for p in (0, 1))
            assert read == written == manager.bytes_written(7)

    def test_remove_shuffle_only_drops_matching_buckets(self):
        with _ctx(batch_size=8) as ctx:
            manager = ctx.shuffle_manager
            manager.register_shuffle(1, num_map_partitions=1)
            manager.register_shuffle(2, num_map_partitions=1)
            manager.write_map_output(1, 0, {0: ["a"]})
            manager.write_map_output(2, 0, {0: ["b"]})
            manager.remove_shuffle(1)
            assert manager.read_reduce_input(2, 0)[0] == ["b"]
            with pytest.raises(ShuffleError):
                manager.read_reduce_input(1, 0)
