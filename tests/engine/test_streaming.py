"""Micro-batch streaming: windows, outputs, reports."""

from __future__ import annotations

import pytest

from repro.engine.streaming import StreamingContext, StreamSource
from repro.errors import StreamError


class CountingSource(StreamSource):
    """Produces ``num_batches`` batches of consecutive integers."""

    def __init__(self, num_batches: int = 5, batch_size: int = 10):
        self.num_batches = num_batches
        self.batch_size = batch_size

    def next_batch(self, batch_index: int):
        if batch_index >= self.num_batches:
            return None
        start = batch_index * self.batch_size
        return list(range(start, start + self.batch_size))


class TestStreamingBasics:
    def test_processes_every_batch(self, engine):
        ssc = StreamingContext(engine, CountingSource(4, 5))
        collected = []
        ssc.stream().foreach_batch(lambda index, ds: collected.append(ds.collect()))
        report = ssc.run(max_batches=10)
        assert report.num_batches == 4
        assert collected[0] == [0, 1, 2, 3, 4]
        assert report.total_input_records == 20

    def test_stops_at_max_batches(self, engine):
        ssc = StreamingContext(engine, CountingSource(100, 3))
        ssc.stream().collect_batches()
        report = ssc.run(max_batches=5)
        assert report.num_batches == 5

    def test_map_filter_transformations_apply_per_batch(self, engine):
        ssc = StreamingContext(engine, CountingSource(3, 10))
        sums = []
        (ssc.stream()
         .map(lambda x: x * 2)
         .filter(lambda x: x % 4 == 0)
         .foreach_batch(lambda index, ds: sums.append(ds.sum())))
        ssc.run(max_batches=3)
        assert len(sums) == 3
        assert sums[0] == sum(x * 2 for x in range(10) if (x * 2) % 4 == 0)

    def test_reduce_by_key_per_batch(self, engine):
        ssc = StreamingContext(engine, CountingSource(2, 10))
        results = []
        (ssc.stream()
         .map(lambda x: (x % 2, 1))
         .reduce_by_key(lambda a, b: a + b)
         .foreach_batch(lambda index, ds: results.append(dict(ds.collect()))))
        ssc.run(max_batches=2)
        assert results[0] == {0: 5, 1: 5}

    def test_transform_hook(self, engine):
        ssc = StreamingContext(engine, CountingSource(2, 4))
        counts = []
        (ssc.stream()
         .transform(lambda ds: ds.distinct())
         .foreach_batch(lambda index, ds: counts.append(ds.count())))
        ssc.run(max_batches=2)
        assert counts == [4, 4]

    def test_run_without_output_raises(self, engine):
        ssc = StreamingContext(engine, CountingSource(2, 4))
        with pytest.raises(StreamError):
            ssc.run(max_batches=2)

    def test_exhausted_source_ends_run(self, engine):
        ssc = StreamingContext(engine, CountingSource(2, 4))
        ssc.stream().collect_batches()
        report = ssc.run(max_batches=10)
        assert report.num_batches == 2


class TestWindows:
    def test_window_accumulates_previous_batches(self, engine):
        ssc = StreamingContext(engine, CountingSource(4, 5))
        counts = []
        (ssc.stream()
         .window(window_batches=2)
         .foreach_batch(lambda index, ds: counts.append(ds.count())))
        ssc.run(max_batches=4)
        assert counts == [5, 10, 10, 10]

    def test_slide_skips_batches(self, engine):
        ssc = StreamingContext(engine, CountingSource(6, 2))
        invocations = []
        (ssc.stream()
         .window(window_batches=2, slide_batches=2)
         .foreach_batch(lambda index, ds: invocations.append(index)))
        ssc.run(max_batches=6)
        assert invocations == [0, 2, 4]

    def test_invalid_window_rejected(self, engine):
        ssc = StreamingContext(engine, CountingSource(2, 2))
        with pytest.raises(StreamError):
            ssc.stream().window(0)


class TestReports:
    def test_report_metrics_are_consistent(self, engine):
        ssc = StreamingContext(engine, CountingSource(3, 10))
        ssc.stream().collect_batches()
        report = ssc.run(max_batches=3)
        summary = report.as_dict()
        assert summary["num_batches"] == 3
        assert summary["total_input_records"] == 30
        assert summary["mean_latency_s"] > 0
        assert summary["max_latency_s"] >= summary["mean_latency_s"]
        assert summary["throughput_records_per_s"] > 0

    def test_empty_report(self):
        from repro.engine.streaming import StreamRunReport
        report = StreamRunReport()
        assert report.mean_latency_s == 0.0
        assert report.throughput_records_per_s == 0.0

    def test_negative_batch_interval_rejected(self, engine):
        with pytest.raises(StreamError):
            StreamingContext(engine, CountingSource(), batch_interval_s=-1)
