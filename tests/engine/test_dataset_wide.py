"""Wide (shuffle) transformations: grouping, joining, sorting, repartitioning."""

from __future__ import annotations

import pytest


class TestGroupingAndReduction:
    def test_reduce_by_key_sums(self, engine):
        pairs = engine.parallelize([(i % 3, i) for i in range(30)], 4)
        result = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        expected = {}
        for i in range(30):
            expected[i % 3] = expected.get(i % 3, 0) + i
        assert result == expected

    def test_group_by_key_collects_all_values(self, engine):
        pairs = engine.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
        grouped = {k: sorted(v) for k, v in pairs.group_by_key().collect()}
        assert grouped == {"a": [1, 3], "b": [2]}

    def test_group_by_function(self, engine):
        grouped = dict(engine.range(10, num_partitions=3)
                       .group_by(lambda x: x % 2).collect())
        assert sorted(grouped[0]) == [0, 2, 4, 6, 8]
        assert sorted(grouped[1]) == [1, 3, 5, 7, 9]

    def test_combine_by_key_average(self, engine):
        pairs = engine.parallelize([("x", 1.0), ("x", 3.0), ("y", 10.0)], 2)
        combined = pairs.combine_by_key(
            lambda v: (v, 1),
            lambda acc, v: (acc[0] + v, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]))
        averages = {k: total / count for k, (total, count) in combined.collect()}
        assert averages == {"x": 2.0, "y": 10.0}

    def test_aggregate_by_key(self, engine):
        pairs = engine.parallelize([("a", 2), ("a", 5), ("b", 7)], 3)
        result = dict(pairs.aggregate_by_key(0, lambda acc, v: acc + v,
                                             lambda a, b: a + b).collect())
        assert result == {"a": 7, "b": 7}

    def test_reduce_by_key_custom_partition_count(self, engine):
        pairs = engine.parallelize([(i, 1) for i in range(20)], 4)
        reduced = pairs.reduce_by_key(lambda a, b: a + b, num_partitions=7)
        assert reduced.num_partitions == 7
        assert len(reduced.collect()) == 20

    def test_count_by_key(self, engine):
        pairs = engine.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        assert pairs.count_by_key() == {"a": 2, "b": 1}


class TestDistinctAndRepartition:
    def test_distinct_removes_duplicates(self, engine):
        ds = engine.parallelize([1, 2, 2, 3, 3, 3, 4], 3)
        assert sorted(ds.distinct().collect()) == [1, 2, 3, 4]

    def test_distinct_on_strings(self, engine):
        ds = engine.parallelize(list("abracadabra"), 4)
        assert sorted(ds.distinct().collect()) == ["a", "b", "c", "d", "r"]

    def test_repartition_preserves_data(self, engine):
        ds = engine.range(100, num_partitions=2).repartition(8)
        assert ds.num_partitions == 8
        assert sorted(ds.collect()) == list(range(100))

    def test_repartition_spreads_records(self, engine):
        sizes = engine.range(80, num_partitions=1).repartition(8).glom() \
            .map(len).collect()
        assert len(sizes) == 8
        assert max(sizes) - min(sizes) <= 1


class TestSorting:
    def test_sort_by_ascending(self, engine):
        data = [5, 3, 8, 1, 9, 2, 7]
        assert engine.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_sort_by_descending(self, engine):
        data = list(range(50))
        result = engine.parallelize(data, 4).sort_by(lambda x: x, ascending=False).collect()
        assert result == sorted(data, reverse=True)

    def test_sort_by_key(self, engine):
        pairs = [(3, "c"), (1, "a"), (2, "b")]
        assert engine.parallelize(pairs, 2).sort_by_key().collect() == \
            [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_large_dataset_is_globally_ordered(self, engine):
        import random
        rng = random.Random(3)
        data = [rng.randrange(10_000) for _ in range(5000)]
        result = engine.parallelize(data, 8).sort_by(lambda x: x).collect()
        assert result == sorted(data)

    def test_sort_by_custom_key(self, engine):
        words = ["bb", "a", "dddd", "ccc"]
        assert engine.parallelize(words, 2).sort_by(len).collect() == \
            ["a", "bb", "ccc", "dddd"]


class TestJoins:
    def test_inner_join(self, engine):
        left = engine.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        right = engine.parallelize([(1, "x"), (3, "y"), (4, "z")], 2)
        assert sorted(left.join(right).collect()) == [(1, ("a", "x")), (3, ("c", "y"))]

    def test_join_with_duplicate_keys_is_cartesian_per_key(self, engine):
        left = engine.parallelize([(1, "a"), (1, "b")], 2)
        right = engine.parallelize([(1, "x"), (1, "y")], 2)
        assert len(left.join(right).collect()) == 4

    def test_left_outer_join(self, engine):
        left = engine.parallelize([(1, "a"), (2, "b")], 2)
        right = engine.parallelize([(2, "x")], 1)
        assert sorted(left.left_outer_join(right).collect()) == \
            [(1, ("a", None)), (2, ("b", "x"))]

    def test_right_outer_join(self, engine):
        left = engine.parallelize([(2, "b")], 1)
        right = engine.parallelize([(1, "x"), (2, "y")], 2)
        assert sorted(left.right_outer_join(right).collect()) == \
            [(1, (None, "x")), (2, ("b", "y"))]

    def test_full_outer_join(self, engine):
        left = engine.parallelize([(1, "a")], 1)
        right = engine.parallelize([(2, "x")], 1)
        assert sorted(left.full_outer_join(right).collect()) == \
            [(1, ("a", None)), (2, (None, "x"))]

    def test_cogroup_groups_both_sides(self, engine):
        left = engine.parallelize([(1, "a"), (1, "b")], 2)
        right = engine.parallelize([(1, "x"), (2, "y")], 2)
        result = {k: (sorted(l), sorted(r)) for k, (l, r) in
                  left.cogroup(right).collect()}
        assert result == {1: (["a", "b"], ["x"]), 2: ([], ["y"])}

    def test_subtract_by_key(self, engine):
        left = engine.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        right = engine.parallelize([(2, "whatever")], 1)
        assert sorted(left.subtract_by_key(right).collect()) == [(1, "a"), (3, "c")]

    def test_join_of_empty_dataset(self, engine):
        left = engine.parallelize([(1, "a")], 1)
        right = engine.empty().map(lambda x: x)
        assert left.join(right).collect() == []


class TestChainedWideOperations:
    def test_wordcount(self, engine):
        lines = ["the quick brown fox", "the lazy dog", "the fox"]
        counts = dict(engine.parallelize(lines, 2)
                      .flat_map(str.split)
                      .map(lambda w: (w, 1))
                      .reduce_by_key(lambda a, b: a + b)
                      .collect())
        assert counts["the"] == 3
        assert counts["fox"] == 2
        assert counts["dog"] == 1

    def test_shuffle_then_narrow_then_shuffle(self, engine):
        result = (engine.range(100, num_partitions=4)
                  .map(lambda x: (x % 10, x))
                  .reduce_by_key(lambda a, b: a + b)
                  .map(lambda kv: (kv[1] % 3, 1))
                  .reduce_by_key(lambda a, b: a + b)
                  .collect())
        assert sum(count for _, count in result) == 10

    def test_join_after_group_by(self, engine):
        grouped = (engine.range(20, num_partitions=4)
                   .map(lambda x: (x % 4, x))
                   .group_by_key()
                   .map_values(len))
        sizes = engine.parallelize([(k, "label") for k in range(4)], 2)
        joined = dict(grouped.join(sizes).collect())
        assert all(value == (5, "label") for value in joined.values())
