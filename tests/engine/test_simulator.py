"""Cluster simulator and cost model."""

from __future__ import annotations

import os

import pytest

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.engine.simulator import (BUILTIN_PROFILES, ClusterProfile, CostModel,
                                    DeploymentSimulator)
from repro.errors import ConfigurationError


def synthetic_job(num_tasks: int = 8, task_duration: float = 0.5,
                  shuffle_bytes: int = 1_000_000) -> JobMetrics:
    """Build a job metrics object without running the engine."""
    job = JobMetrics(job_id=0, description="synthetic")
    stage = StageMetrics(stage_id=0, name="stage", is_shuffle_map=True)
    for index in range(num_tasks):
        stage.add_task(TaskMetrics(task_id=f"t{index}", stage_id=0,
                                   partition_index=index,
                                   duration_s=task_duration,
                                   shuffle_bytes_written=shuffle_bytes // num_tasks))
    job.add_stage(stage)
    job.finish()
    return job


class TestClusterProfile:
    def test_total_slots(self):
        profile = ClusterProfile("p", num_workers=4, cores_per_worker=8)
        assert profile.total_slots == 32

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterProfile("p", num_workers=0)
        with pytest.raises(ConfigurationError):
            ClusterProfile("p", num_workers=1, cpu_speed_factor=0)
        with pytest.raises(ConfigurationError):
            ClusterProfile("p", num_workers=1, network_gbps=0)

    def test_builtin_profiles_exist(self):
        assert "local" in BUILTIN_PROFILES
        assert "large-16" in BUILTIN_PROFILES
        assert BUILTIN_PROFILES["large-16"].num_workers == 16


class TestCostModel:
    def test_more_slots_means_less_wall_clock(self):
        job = synthetic_job(num_tasks=32, task_duration=0.5)
        model = CostModel()
        small = model.estimate_job(job, BUILTIN_PROFILES["dev-2"])
        large = model.estimate_job(job, BUILTIN_PROFILES["large-16"])
        assert large.estimated_wall_clock_s < small.estimated_wall_clock_s

    def test_wall_clock_never_below_slowest_task(self):
        job = synthetic_job(num_tasks=4, task_duration=2.0)
        estimate = CostModel().estimate_job(job, BUILTIN_PROFILES["large-16"])
        assert estimate.compute_time_s >= 2.0 / BUILTIN_PROFILES["large-16"].cpu_speed_factor

    def test_single_node_has_no_network_shuffle_time(self):
        job = synthetic_job(shuffle_bytes=50_000_000)
        local = CostModel().estimate_job(job, BUILTIN_PROFILES["local"])
        remote = CostModel().estimate_job(job, BUILTIN_PROFILES["dev-2"])
        assert local.shuffle_time_s == 0.0
        assert remote.shuffle_time_s > 0.0

    def test_cost_scales_with_price(self):
        job = synthetic_job()
        model = CostModel()
        cheap = model.estimate_job(job, BUILTIN_PROFILES["dev-2"])
        pricey = model.estimate_job(job, BUILTIN_PROFILES["premium-8"])
        assert pricey.estimated_cost_usd > cheap.estimated_cost_usd * 0.5

    def test_free_local_profile_costs_nothing(self):
        estimate = CostModel().estimate_job(synthetic_job(), BUILTIN_PROFILES["local"])
        assert estimate.estimated_cost_usd == 0.0

    def test_estimate_jobs_accumulates(self):
        jobs = [synthetic_job(), synthetic_job()]
        single = CostModel().estimate_job(jobs[0], BUILTIN_PROFILES["dev-2"])
        combined = CostModel().estimate_jobs(jobs, BUILTIN_PROFILES["dev-2"])
        assert combined.estimated_wall_clock_s == pytest.approx(
            2 * single.estimated_wall_clock_s)

    def test_estimate_dict_shape(self):
        estimate = CostModel().estimate_job(synthetic_job(), BUILTIN_PROFILES["small-4"])
        as_dict = estimate.as_dict()
        assert as_dict["profile"] == "small-4"
        assert as_dict["estimated_wall_clock_s"] > 0


class TestDeploymentSimulator:
    def test_compare_sorts_by_wall_clock(self):
        simulator = DeploymentSimulator()
        estimates = simulator.compare([synthetic_job(num_tasks=64)],
                                      ["local", "small-4", "large-16"])
        wall_clocks = [estimate.estimated_wall_clock_s for estimate in estimates]
        assert wall_clocks == sorted(wall_clocks)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentSimulator().profile("does-not-exist")

    def test_register_custom_profile(self):
        simulator = DeploymentSimulator()
        simulator.register(ClusterProfile("huge", num_workers=64, cores_per_worker=8,
                                          usd_per_hour=20.0))
        assert "huge" in simulator.profiles
        estimates = simulator.compare([synthetic_job(num_tasks=128)],
                                      ["local", "huge"])
        assert {estimate.profile.name for estimate in estimates} == {"local", "huge"}

    def test_best_under_budget(self):
        simulator = DeploymentSimulator()
        job = synthetic_job(num_tasks=64, task_duration=1.0)
        best = simulator.best_under_budget([job], max_cost_usd=0.0,
                                           profile_names=["local", "large-16"])
        assert best is not None
        assert best.profile.name == "local"

    def test_best_under_budget_none_when_impossible(self):
        simulator = DeploymentSimulator()
        job = synthetic_job()
        assert simulator.best_under_budget([job], max_cost_usd=-1.0) is None

    def test_simulation_from_real_engine_run(self, engine):
        engine.range(2000, num_partitions=8).map(lambda x: (x % 10, x)) \
            .reduce_by_key(lambda a, b: a + b).collect()
        estimates = DeploymentSimulator().compare(engine.metrics.jobs,
                                                  ["local", "medium-8"])
        assert all(estimate.estimated_wall_clock_s > 0 for estimate in estimates)


class TestCostModelAgainstMeasuredProcessBackend:
    """Validate the simulator against a *measured* multi-process run.

    Until now every multi-worker wall clock in this repo was simulated.  The
    process backend makes the comparison real: profile the workload serially
    (one thread worker), feed that measured profile to the cost model with a
    cluster profile describing this host's actual parallel slots, and check
    the estimate against the wall clock of an actual ``executor_backend=
    "process"`` run.

    The band is deliberately generous (4x either way): the model knows
    nothing about fork/IPC/pickling overhead, and on a single-core host the
    process pool adds overhead without adding parallelism.  The point is
    that the estimate is *grounded* — the right order of magnitude — not
    that it is precise.
    """

    WORKERS = 2
    ERROR_BAND = 4.0

    @staticmethod
    def _run_workload(config: EngineConfig) -> float:
        def burn(pair):
            key, value = pair
            acc = value
            for _ in range(150):
                acc = (acc * 31 + 7) % 1_000_003
            return key, acc

        with EngineContext(config) as ctx:
            data = [(i % 16, i) for i in range(24_000)]
            (ctx.parallelize(data, 8)
             .map(burn)
             .reduce_by_key(lambda a, b: a + b, 8)
             .collect())
            return (ctx.metrics.summary()["wall_clock_s"],
                    list(ctx.metrics.jobs))

    def test_simulated_wall_clock_brackets_measured_process_run(self):
        pytest.importorskip("cloudpickle")
        serial_wall, serial_jobs = self._run_workload(
            EngineConfig(num_workers=1, default_parallelism=8, seed=1))
        host_profile = ClusterProfile(
            "this-host", num_workers=1,
            cores_per_worker=min(self.WORKERS, os.cpu_count() or 1))
        estimate = CostModel().estimate_jobs(serial_jobs, host_profile)
        measured_wall, _ = self._run_workload(
            EngineConfig(num_workers=self.WORKERS, default_parallelism=8,
                         seed=1, executor_backend="process"))
        assert estimate.estimated_wall_clock_s > 0
        assert measured_wall <= estimate.estimated_wall_clock_s * self.ERROR_BAND, \
            (f"measured process wall {measured_wall:.3f}s is more than "
             f"{self.ERROR_BAND}x the simulated {estimate.estimated_wall_clock_s:.3f}s")
        assert measured_wall >= estimate.estimated_wall_clock_s / self.ERROR_BAND, \
            (f"measured process wall {measured_wall:.3f}s is less than "
             f"1/{self.ERROR_BAND} of the simulated "
             f"{estimate.estimated_wall_clock_s:.3f}s")
        # sanity: the serial profile itself is CPU-bound enough to matter
        assert serial_wall > 0.1
