"""Lineage-based fault recovery: crashes, corruption, deadlines, recovery.

The contract under test: with seeded faults injected — spurious task
failures (``failure_rate``), hard worker deaths (``crash_failure_rate``),
damaged spill/transport frames (``corruption_rate``) — every wide operator
still returns *identical* results to a fault-free run, on both executor
backends, because the engine detects the damage (checksummed frames),
invalidates exactly the lost map output, recomputes it from lineage and
retries the consuming stage.  Recovery must be visible in the job metrics
(``stage_retries``, ``recomputed_tasks``, ``lost_map_outputs``,
``timed_out_tasks``) and must never leak spill or transport files.
"""

from __future__ import annotations

import os
import struct
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext
from repro.engine.memory import (CODEC_NONE, CRC_FLAG, corrupt_payload,
                                 dump_frames, load_frames, should_corrupt)
from repro.engine.shuffle import ShuffleManager
from repro.errors import (FetchFailedError, ShuffleCorruptionError,
                          TaskError)

from test_memory_bounded import DATA, OTHER_SIDE, PIPELINES, TINY_CAP

_HAVE_CLOSURES = serializer.supports_closures()

needs_closures = pytest.mark.skipif(
    not _HAVE_CLOSURES,
    reason="shipping task closures to worker processes needs cloudpickle")


def make_engine(backend: str, batch_size: int = 1024,
                **overrides) -> EngineContext:
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "executor_backend": backend}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def run_clean(backend: str, pipeline_name: str, batch_size: int = 1024,
              **overrides):
    """Fault-free reference run of one wide pipeline (collect twice)."""
    build = PIPELINES[pipeline_name]
    with make_engine(backend, batch_size=batch_size,
                     broadcast_threshold_bytes=0, **overrides) as ctx:
        ds = build(ctx.parallelize(DATA, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()
        return first, second, ctx.metrics.summary()


# -- checksummed frames --------------------------------------------------------


_HEADER = struct.Struct("<BI")


def test_frames_round_trip_and_carry_crc(tmp_path):
    records = [(i % 7, f"value-{i}") for i in range(100)]
    payload = dump_frames(records, CODEC_NONE)
    assert payload[0] & CRC_FLAG, "new frames must announce their checksum"
    path = str(tmp_path / "frames.bin")
    with open(path, "wb") as handle:
        handle.write(payload)
    assert load_frames(path, 0, len(payload)) == records


def test_legacy_checksumless_frames_still_read_back(tmp_path):
    """Frames written before the CRC era carry no checksum and must load."""
    import pickle
    records = [("legacy", i) for i in range(50)]
    raw = pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)
    legacy = _HEADER.pack(CODEC_NONE, len(raw)) + raw  # no CRC_FLAG, no CRC
    path = str(tmp_path / "legacy.bin")
    with open(path, "wb") as handle:
        handle.write(legacy)
    assert load_frames(path, 0, len(legacy)) == records


def test_bit_flip_is_detected_by_crc(tmp_path):
    records = [(i, i * i) for i in range(200)]
    payload = dump_frames(records, CODEC_NONE)
    flipped = bytearray(payload)
    flipped[len(payload) // 2] ^= 0x10  # damage the payload region
    path = str(tmp_path / "flipped.bin")
    with open(path, "wb") as handle:
        handle.write(bytes(flipped))
    with pytest.raises(ShuffleCorruptionError) as excinfo:
        load_frames(path, 0, len(flipped))
    assert excinfo.value.path == path


def test_truncated_payload_is_detected(tmp_path):
    payload = dump_frames([(i, "x" * 20) for i in range(100)], CODEC_NONE)
    path = str(tmp_path / "truncated.bin")
    with open(path, "wb") as handle:
        handle.write(payload[:len(payload) // 2])
    with pytest.raises(ShuffleCorruptionError):
        load_frames(path, 0, len(payload))


def test_unknown_codec_byte_is_detected(tmp_path):
    path = str(tmp_path / "garbage.bin")
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(0x7F, 4) + b"ruin")
    with pytest.raises(ShuffleCorruptionError):
        load_frames(path, 0, _HEADER.size + 4)


def test_missing_file_is_a_corruption_error():
    with pytest.raises(ShuffleCorruptionError):
        load_frames("/nonexistent/shuffle-99.spill", 0, 64)


def test_corruption_injection_is_seeded_and_deterministic():
    decisions = [should_corrupt(5, 0.5, f"t{i}:0") for i in range(64)]
    assert decisions == [should_corrupt(5, 0.5, f"t{i}:0") for i in range(64)]
    assert any(decisions) and not all(decisions)
    assert not any(should_corrupt(5, 0.0, f"t{i}:0") for i in range(64))
    payload = dump_frames([(i, i) for i in range(100)], CODEC_NONE)
    damaged = corrupt_payload(payload, 5, "t3:0")
    assert damaged == corrupt_payload(payload, 5, "t3:0")
    assert damaged != payload


# -- invalidation and lineage bookkeeping --------------------------------------


BUCKETS = {0: [("a", i) for i in range(30)], 1: [("b", i) for i in range(15)]}


def test_invalidate_map_output_unmarks_and_retracts():
    manager = ShuffleManager(compression=False)
    manager.register_shuffle(3, 2)
    manager.write_map_output(3, 0, BUCKETS)
    manager.write_map_output(3, 1, BUCKETS)
    clean_stats = manager.map_output_stats(3)
    assert manager.is_complete(3)
    assert manager.missing_map_partitions(3) == []

    assert manager.invalidate_map_output(3, 1)
    assert not manager.is_complete(3)
    assert manager.missing_map_partitions(3) == [1]
    assert manager.map_output_stats(3) is None, \
        "an incomplete shuffle must not report runtime stats"

    # the lineage recomputation path: rewrite only the lost partition
    manager.write_map_output(3, 1, BUCKETS)
    assert manager.is_complete(3)
    assert manager.map_output_stats(3) == clean_stats
    assert manager.reduce_partition_bytes(3) == {
        0: manager.reduce_partition_bytes(3)[0],
        1: manager.reduce_partition_bytes(3)[1]}


def test_invalidate_unknown_partition_is_a_noop():
    manager = ShuffleManager(compression=False)
    manager.register_shuffle(4, 2)
    manager.write_map_output(4, 0, BUCKETS)
    assert not manager.invalidate_map_output(4, 1)  # never written
    assert not manager.invalidate_map_output(9, 0)  # never registered
    assert manager.missing_map_partitions(4) == [1]


# -- retried-attempt accounting (double-count regression) ----------------------


def test_retried_map_attempt_does_not_double_count():
    """A rewritten map partition replaces its totals instead of adding."""
    manager = ShuffleManager(compression=False)
    manager.register_shuffle(7, 2)
    manager.write_map_output(7, 0, BUCKETS)
    manager.write_map_output(7, 1, BUCKETS)
    clean_stats = manager.map_output_stats(7)
    clean_reduce = manager.reduce_partition_bytes(7)

    # a retried (or recomputed) attempt rewrites partition 0 wholesale
    manager.write_map_output(7, 0, BUCKETS)
    assert manager.map_output_stats(7) == clean_stats
    assert manager.bytes_written(7) == clean_stats[1]
    assert manager.reduce_partition_bytes(7) == clean_reduce


def test_retried_external_registration_does_not_double_count(tmp_path):
    from repro.engine.memory import FrameFileWriter
    from repro.engine.shuffle import estimate_bytes

    manager = ShuffleManager(compression=False)
    manager.register_shuffle(8, 1)

    def register(attempt: int):
        writer = FrameFileWriter(str(tmp_path / f"map-0-a{attempt}.data"))
        spans = {}
        for reduce_partition, records in BUCKETS.items():
            size = estimate_bytes(records, False, CODEC_NONE)
            offset, length = writer.append(dump_frames(records, CODEC_NONE))
            spans[reduce_partition] = (writer.path, offset, length,
                                       len(records), size)
        writer.close()
        manager.register_external_map_output(8, 0, spans)

    register(0)
    clean_stats = manager.map_output_stats(8)
    register(1)  # the retried attempt overwrites, never adds
    assert manager.map_output_stats(8) == clean_stats
    assert manager.bytes_written(8) == clean_stats[1]


# -- chaos matrix: all wide operators survive injected faults ------------------


#: Fault rates low enough that the bounded retry budgets converge for every
#: (pipeline, backend) cell, high enough that faults actually fire across
#: the matrix (asserted in the aggregate below).
CHAOS = {"failure_rate": 0.05, "crash_failure_rate": 0.05,
         "corruption_rate": 0.05, "max_task_retries": 8,
         "max_stage_retries": 8, "seed": 7}

_fault_hits = {"thread": 0, "process": 0}


def run_chaos(backend: str, pipeline_name: str):
    build = PIPELINES[pipeline_name]
    overrides = dict(CHAOS)
    if backend == "thread":
        # thread-backend corruption fires on *spill* frames; a tiny budget
        # makes every bucket cross the disk
        overrides["shuffle_memory_bytes"] = TINY_CAP
    with make_engine(backend, broadcast_threshold_bytes=0,
                     **overrides) as ctx:
        ds = build(ctx.parallelize(DATA, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()
        summary = ctx.metrics.summary()
        return first, second, summary


@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_chaos_thread_backend_matches_fault_free(pipeline_name):
    first, second, summary = run_chaos("thread", pipeline_name)
    clean_first, clean_second, _ = run_clean("thread", pipeline_name,
                                             seed=CHAOS["seed"])
    assert first == clean_first
    assert second == clean_second
    _fault_hits["thread"] += (summary["num_failed_attempts"]
                              + summary["lost_map_outputs"])


@needs_closures
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_chaos_process_backend_matches_fault_free(pipeline_name):
    first, second, summary = run_chaos("process", pipeline_name)
    clean_first, clean_second, _ = run_clean("thread", pipeline_name,
                                             seed=CHAOS["seed"])
    assert first == clean_first
    assert second == clean_second
    _fault_hits["process"] += (summary["num_failed_attempts"]
                               + summary["lost_map_outputs"]
                               + summary["stage_retries"])


@needs_closures
def test_chaos_matrix_actually_injected_faults():
    """Guards the matrix above against silently running fault-free."""
    assert _fault_hits["thread"] > 0
    assert _fault_hits["process"] > 0


# -- network chaos matrix: TCP shuffle under drops, delays and wire rot --------


#: Network fault rates for the TCP transport: dropped connections, delayed
#: replies and on-the-wire corruption, stacked on top of injected worker
#: crashes.  Low enough for the fetch-retry and stage-retry budgets to
#: converge everywhere, high enough to actually fire (asserted below).
NETWORK_CHAOS = {"network_drop_rate": 0.08, "network_delay_s": 0.002,
                 "corruption_rate": 0.05, "fetch_max_retries": 4,
                 "fetch_backoff_s": 0.001, "max_task_retries": 8,
                 "max_stage_retries": 8, "seed": 7}

_network_fault_hits = {"thread": 0, "process": 0}


def run_network_chaos(backend: str, pipeline_name: str,
                      batch_size: int = 1024, **extra):
    build = PIPELINES[pipeline_name]
    overrides = dict(NETWORK_CHAOS)
    overrides.update(extra)
    with make_engine(backend, batch_size=batch_size,
                     broadcast_threshold_bytes=0, shuffle_transport="tcp",
                     **overrides) as ctx:
        ds = build(ctx.parallelize(DATA, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()
        summary = ctx.metrics.summary()
        return first, second, summary


@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_network_chaos_thread_backend_matches_fault_free(pipeline_name):
    first, second, summary = run_network_chaos("thread", pipeline_name)
    clean_first, clean_second, _ = run_clean(
        "thread", pipeline_name, seed=NETWORK_CHAOS["seed"])
    assert first == clean_first
    assert second == clean_second
    _network_fault_hits["thread"] += (summary["fetch_retries"]
                                      + summary["stage_retries"])


@needs_closures
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_network_chaos_process_backend_matches_fault_free(pipeline_name):
    first, second, summary = run_network_chaos(
        "process", pipeline_name, crash_failure_rate=0.05)
    clean_first, clean_second, _ = run_clean(
        "thread", pipeline_name, seed=NETWORK_CHAOS["seed"])
    assert first == clean_first
    assert second == clean_second
    _network_fault_hits["process"] += (summary["fetch_retries"]
                                       + summary["stage_retries"])


@pytest.mark.parametrize("batch_size", [0, 1])
@pytest.mark.parametrize("backend", ["thread",
                                     pytest.param("process",
                                                  marks=needs_closures)])
def test_network_chaos_across_batch_sizes(backend, batch_size):
    """Record-at-a-time and single-record batches survive the wire too."""
    for pipeline_name in ("reduce_by_key", "join"):
        first, second, _ = run_network_chaos(backend, pipeline_name,
                                             batch_size=batch_size)
        clean_first, clean_second, _ = run_clean(
            "thread", pipeline_name, batch_size=batch_size,
            seed=NETWORK_CHAOS["seed"])
        assert first == clean_first
        assert second == clean_second


def test_network_chaos_matrix_actually_retried_fetches():
    """Guards the network matrix against silently running fault-free: the
    injected drops and wire rot must surface as counted fetch retries."""
    assert _network_fault_hits["thread"] > 0
    if _HAVE_CLOSURES:
        assert _network_fault_hits["process"] > 0


# -- crash recovery: jobs survive a broken process pool ------------------------


@needs_closures
def test_job_survives_broken_process_pool():
    with make_engine("process", crash_failure_rate=0.2, seed=1,
                     max_stage_retries=8) as ctx:
        ds = ctx.parallelize(DATA, 4).reduce_by_key(lambda a, b: a + b, 4)
        result = ds.collect()
        job = ctx.metrics.jobs[-1]
        assert job.stage_retries > 0, \
            "a 20% crash rate over 8 tasks must kill at least one worker"
    with make_engine("thread") as ctx:
        expected = (ctx.parallelize(DATA, 4)
                    .reduce_by_key(lambda a, b: a + b, 4).collect())
    assert result == expected


@needs_closures
def test_crash_retries_are_bounded():
    with make_engine("process", crash_failure_rate=0.97, seed=1,
                     max_stage_retries=2) as ctx:
        with pytest.raises(Exception):
            ctx.parallelize(DATA, 4).group_by_key(4).collect()


# -- corruption recovery: manual mid-file damage -------------------------------


def _flip_byte_mid_file(path: str) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.seek(size // 2)
        byte = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([byte[0] ^ 0x40]))


def _corrupt_one_shuffle_file(root: str, pattern: str) -> str:
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if pattern in name or pattern in dirpath:
                path = os.path.join(dirpath, name)
                if os.path.getsize(path) > 16:
                    _flip_byte_mid_file(path)
                    return path
    raise AssertionError(f"no {pattern!r} file found under {root}")


def test_corrupt_spill_frame_triggers_recomputation_thread():
    """Thread backend: a damaged spill span is recomputed from lineage."""
    with make_engine("thread", shuffle_memory_bytes=TINY_CAP,
                     max_stage_retries=4) as ctx:
        ds = ctx.parallelize(DATA, 4).group_by_key(4)
        first = ds.collect()
        _corrupt_one_shuffle_file(ctx._spill_root, ".spill")
        second = ds.collect()  # re-reads the shuffle, hits the bad CRC
        assert second == first
        job = ctx.metrics.jobs[-1]
        assert job.lost_map_outputs > 0
        assert job.recomputed_tasks > 0
        assert job.stage_retries > 0


@needs_closures
def test_corrupt_transport_frame_triggers_recomputation_process():
    """Process backend: a damaged transport frame is recomputed."""
    with make_engine("process", max_stage_retries=4) as ctx:
        ds = ctx.parallelize(DATA, 4).group_by_key(4)
        first = ds.collect()
        _corrupt_one_shuffle_file(
            os.path.join(ctx._spill_root, "transport"), "map-")
        second = ds.collect()
        assert second == first
        job = ctx.metrics.jobs[-1]
        assert job.lost_map_outputs > 0
        assert job.recomputed_tasks > 0
        assert job.stage_retries > 0


def test_fetch_failure_without_retries_propagates():
    with make_engine("thread", shuffle_memory_bytes=TINY_CAP,
                     max_stage_retries=0) as ctx:
        ds = ctx.parallelize(DATA, 4).group_by_key(4)
        ds.collect()
        _corrupt_one_shuffle_file(ctx._spill_root, ".spill")
        with pytest.raises(FetchFailedError):
            ds.collect()


# -- task deadlines ------------------------------------------------------------


@needs_closures
def test_task_deadline_abandons_and_retries(tmp_path):
    marker = str(tmp_path / "slept-once")

    def slow_once(pair):
        if pair[0] == 0 and not os.path.exists(marker):
            open(marker, "w").close()
            time.sleep(3.0)
        return pair

    with make_engine("process", task_timeout_s=0.75, num_workers=2,
                     default_parallelism=2) as ctx:
        data = [(i % 2, i) for i in range(20)]
        result = ctx.parallelize(data, 2).map(slow_once).collect()
        job = ctx.metrics.jobs[-1]
        assert sorted(result) == sorted(data), \
            "the late attempt's result must be discarded, not merged"
        assert job.timed_out_tasks == 1
        timed_out = [task for stage in job.stages for task in stage.tasks
                     if task.timed_out]
        assert len(timed_out) == 1 and timed_out[0].failed


@needs_closures
def test_task_deadline_exhaustion_raises(tmp_path):
    def always_slow(pair):
        time.sleep(3.0)
        return pair

    with make_engine("process", task_timeout_s=0.5, max_task_retries=1,
                     default_parallelism=2) as ctx:
        with pytest.raises(TaskError) as excinfo:
            ctx.parallelize([(0, 1), (1, 2)], 2).map(always_slow).collect()
        assert "deadline" in str(excinfo.value)


# -- no-leak regression --------------------------------------------------------


def _leftover_shuffle_files(root: str) -> list:
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if "shuffle-" in dirpath or "shuffle-" in name \
                    or name.endswith(".payload"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


@needs_closures
def test_no_leak_after_crashing_stage_and_failed_job():
    """Worker crashes and failed jobs leave no shuffle/payload files behind."""
    def explode(pair):
        if pair[1] == 799:
            raise ValueError("boom")
        return pair

    ctx = make_engine("process", crash_failure_rate=0.2, seed=1,
                      max_stage_retries=8, max_task_retries=0)
    try:
        # a crashing-but-successful job, then a failing one
        assert ctx.parallelize(DATA, 4).repartition(4).count() == len(DATA)
        ctx.shuffle_manager.clear()
        with pytest.raises(TaskError):
            ctx.parallelize(DATA, 4).map(explode).group_by_key(4).collect()
        root = ctx._spill_root
        assert not _leftover_shuffle_files(root), \
            "failed jobs must sweep stage payloads and partial map output"
    finally:
        ctx.stop()
    assert not os.path.isdir(root), \
        "the context spill root (transport and worker scratch included) " \
        "must die with stop()"


def test_no_leak_after_failed_job_thread_backend():
    def explode(pair):
        if pair[1] == 799:
            raise ValueError("boom")
        return pair

    ctx = make_engine("thread", shuffle_memory_bytes=TINY_CAP,
                      max_task_retries=0)
    try:
        with pytest.raises(TaskError):
            ctx.parallelize(DATA, 4).map(explode).group_by_key(4).collect()
        root = ctx._spill_root
        if root is not None:
            assert not _leftover_shuffle_files(root)
    finally:
        ctx.stop()
    if root is not None:
        assert not os.path.isdir(root)


# -- property: single-fault runs are observably fault-free ---------------------


#: Metric keys that legitimately differ once attempts are retried: timings,
#: the failure tallies themselves, and scheduling-dependent residency.
_FAULT_VOLATILE = ("wall_clock_s", "total_task_time_s",
                   "num_failed_attempts", "num_tasks", "spills",
                   "spill_bytes", "peak_shuffle_bytes")


def _comparable(summary: dict) -> dict:
    out = {key: value for key, value in summary.items()
           if key not in _FAULT_VOLATILE}
    # attempts vary under retries; *successful* tasks must not
    out["num_successful_tasks"] = (summary["num_tasks"]
                                   - summary["num_failed_attempts"])
    return out


@pytest.mark.parametrize("backend",
                         ["thread",
                          pytest.param("process", marks=needs_closures)])
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       pipeline_name=st.sampled_from(sorted(PIPELINES)),
       batch_size=st.sampled_from([0, 1, 1024]))
def test_seeded_failures_leave_results_and_metrics_intact(
        backend, seed, pipeline_name, batch_size):
    """Plain injected failures: retried attempts change *only* the failure
    tallies — results and every other metric match a fault-free run, and
    the recovery counters stay zero (no output was ever lost)."""
    faulty = run_clean(backend, pipeline_name, batch_size=batch_size,
                       seed=seed, failure_rate=0.1, max_task_retries=8)
    clean = run_clean(backend, pipeline_name, batch_size=batch_size,
                      seed=seed)
    assert faulty[0] == clean[0]
    assert faulty[1] == clean[1]
    assert _comparable(faulty[2]) == _comparable(clean[2])
    for counter in ("stage_retries", "recomputed_tasks",
                    "lost_map_outputs", "timed_out_tasks"):
        assert faulty[2][counter] == 0
