"""Process execution backend: observably identical to the thread backend.

The contract under test: with ``executor_backend="process"`` every wide
operator returns *identical* results (same records, same order) and identical
job metrics — except wall-clock timings — as the default thread backend,
while actually running tasks in forked worker processes and moving shuffle
data through spill-file transport frames.  Fault injection, retries, skew
splitting, broadcast joins and bounded-memory spilling must all behave the
same; unpicklable task graphs must fail fast with a diagnosis naming the
offending dataset; and no transport file may survive ``EngineContext.stop()``
or a failed job.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext
from repro.errors import ConfigurationError, SerializationError, TaskError

from test_memory_bounded import (DATA, OTHER_SIDE, PIPELINES, TINY_CAP,
                                 run_pipeline)

if not serializer.supports_closures():  # pragma: no cover - cloudpickle ships
    pytest.skip("shipping task closures to worker processes needs cloudpickle",
                allow_module_level=True)

#: Only timings may differ between the two backends.  Byte, spill and peak
#: accounting flows back across the process boundary through the task result
#: protocol, so even ``peak_shuffle_bytes`` must match in unbounded mode.
_TIMING_KEYS = ("wall_clock_s", "total_task_time_s")

#: Bounded runs additionally own per-process memory managers, so spill
#: counters and peaks are backend-local there.
_BOUNDED_VOLATILE = _TIMING_KEYS + ("spills", "spill_bytes",
                                    "peak_shuffle_bytes")


def process_engine(batch_size: int = 1024, **overrides) -> EngineContext:
    """An engine running tasks in multiprocessing workers."""
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "executor_backend": "process"}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def thread_engine(batch_size: int = 1024, **overrides) -> EngineContext:
    """The same engine on the default in-process thread backend."""
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "executor_backend": "thread"}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def comparable(metrics: dict, volatile=_TIMING_KEYS) -> dict:
    return {key: value for key, value in metrics.items()
            if key not in volatile}


# -- backend parity ------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [0, 1, 1024])
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_process_matches_thread_exactly(pipeline_name, batch_size):
    """Both backends agree record-for-record and metric-for-metric."""
    proc_first, proc_second, proc_metrics, _ = run_pipeline(
        process_engine, pipeline_name, DATA, batch_size)
    thr_first, thr_second, thr_metrics, _ = run_pipeline(
        thread_engine, pipeline_name, DATA, batch_size)
    assert proc_first == thr_first
    assert proc_second == thr_second
    # run_pipeline already strips the spill counters; put the ones the
    # process backend must reproduce back under test
    assert proc_metrics == thr_metrics


@pytest.mark.parametrize("pipeline_name", ["group_by_key", "sort_by", "join"])
def test_full_metric_parity_including_peaks(pipeline_name):
    """Unbounded runs match on *every* summary key except the timings."""

    def run(make_engine):
        with make_engine(batch_size=1024,
                         broadcast_threshold_bytes=0) as ctx:
            build = PIPELINES[pipeline_name]
            ds = build(ctx.parallelize(DATA, 4),
                       ctx.parallelize(OTHER_SIDE, 2))
            first = ds.collect()
            return first, ctx.metrics.summary()

    proc_result, proc_summary = run(process_engine)
    thr_result, thr_summary = run(thread_engine)
    assert proc_result == thr_result
    assert comparable(proc_summary) == comparable(thr_summary)
    assert proc_summary["shuffle_bytes"] > 0
    assert proc_summary["peak_shuffle_bytes"] > 0


@pytest.mark.parametrize("pipeline_name", ["group_by_key", "sort_by", "join"])
def test_skew_split_parity(pipeline_name):
    """Runtime skew splitting fires and agrees on the process backend."""
    overrides = {"skew_split_factor": 4, "skew_min_partition_bytes": 1}

    def proc(batch_size, **extra):
        return process_engine(batch_size, **dict(overrides, **extra))

    def thr(batch_size, **extra):
        return thread_engine(batch_size, **dict(overrides, **extra))

    proc_first, proc_second, proc_metrics, _ = run_pipeline(
        proc, pipeline_name, DATA, 1024)
    thr_first, thr_second, thr_metrics, _ = run_pipeline(
        thr, pipeline_name, DATA, 1024)
    assert proc_first == thr_first
    assert proc_second == thr_second
    assert proc_metrics == thr_metrics
    if pipeline_name != "sort_by":  # range-partitioned sort rarely skews here
        assert proc_metrics["skew_splits"] > 0


def test_broadcast_join_parity():
    """Broadcast joins (no shuffle of the probe side) agree across backends."""

    def run(make_engine):
        with make_engine(batch_size=1024,
                         broadcast_threshold_bytes=1 << 20) as ctx:
            joined = (ctx.parallelize(DATA, 4)
                      .join(ctx.parallelize(OTHER_SIDE, 2), 4))
            first = joined.collect()
            second = joined.collect()
            return first, second, ctx.metrics.summary()

    proc_first, proc_second, proc_summary = run(process_engine)
    thr_first, thr_second, thr_summary = run(thread_engine)
    assert proc_first == thr_first
    assert proc_second == thr_second
    assert comparable(proc_summary) == comparable(thr_summary)


def test_bounded_memory_process_backend_is_correct():
    """A capped process run still matches unbounded thread results.

    Spill counters are volatile here: workers own their own memory
    managers, so where the thread backend spills shuffle buckets on the
    driver, the process backend spills reduce-side merge runs per worker.
    """
    for pipeline_name in ("group_by_key", "sort_by", "join"):
        proc_first, proc_second, proc_metrics, _ = run_pipeline(
            lambda batch_size, **kw: process_engine(
                batch_size, shuffle_memory_bytes=TINY_CAP, **kw),
            pipeline_name, DATA, 1024)
        thr_first, thr_second, thr_metrics, _ = run_pipeline(
            thread_engine, pipeline_name, DATA, 1024)
        assert proc_first == thr_first
        assert proc_second == thr_second
        assert comparable(proc_metrics, _BOUNDED_VOLATILE) == \
            comparable(thr_metrics, _BOUNDED_VOLATILE)


def test_cached_datasets_hit_across_stages():
    """Blocks cached in workers flow back and serve later jobs as hits."""

    def run(make_engine):
        with make_engine() as ctx:
            base = ctx.parallelize(DATA, 4).map_values(lambda v: v + 1).cache()
            first = base.reduce_by_key(lambda a, b: a + b, 4).collect()
            second = base.group_by_key(4).map_values(len).collect()
            return first, second, ctx.metrics.summary()["cache_hits"]

    proc_first, proc_second, proc_hits = run(process_engine)
    thr_first, thr_second, thr_hits = run(thread_engine)
    assert proc_first == thr_first
    assert proc_second == thr_second
    assert proc_hits == thr_hits
    assert proc_hits > 0


# -- fault injection and retries ----------------------------------------------


def test_fault_injection_is_deterministic_across_backends():
    """The seeded per-(task, attempt) failure decision runs in the worker
    yet injects exactly the failures the thread backend injects."""

    def run(make_engine):
        with make_engine(failure_rate=0.2, max_task_retries=6) as ctx:
            ds = (ctx.parallelize(DATA, 4)
                  .reduce_by_key(lambda a, b: a + b, 4))
            result = ds.collect()
            return result, ctx.metrics.summary()["num_failed_attempts"]

    proc_result, proc_failures = run(process_engine)
    thr_result, thr_failures = run(thread_engine)
    assert proc_result == thr_result
    assert proc_failures == thr_failures
    assert proc_failures > 0, "a 20% rate over 8+ tasks must inject something"


def test_worker_exception_surfaces_as_task_error_with_traceback():
    def explode(pair):
        if pair[1] == 799:
            raise ValueError("boom in worker")
        return pair

    with process_engine(max_task_retries=1) as ctx:
        ds = ctx.parallelize(DATA, 4).map(explode).group_by_key(4)
        with pytest.raises(TaskError) as excinfo:
            ds.collect()
        assert "failed after 2 attempts" in str(excinfo.value)
        # the worker's formatted traceback travels back for debugging
        assert "boom in worker" in str(excinfo.value.cause)
        assert "Traceback" in str(excinfo.value.cause)
        # like the thread backend, a failed stage's attempts never reach
        # the job summary — only completed stages are folded in
        assert ctx.metrics.summary()["num_failed_attempts"] == 0


# -- preflight picklability check ---------------------------------------------


def test_unpicklable_closure_fails_fast_with_named_dataset():
    lock = threading.Lock()
    with process_engine() as ctx:
        ds = ctx.parallelize(range(20), 4).map(lambda x: (x, lock))
        with pytest.raises(SerializationError) as excinfo:
            ds.collect()
        message = str(excinfo.value)
        assert "cannot ship stage to worker processes" in message
        assert "map" in message


def test_unpicklable_source_records_fail_fast_with_named_dataset():
    data = [threading.Lock() for _ in range(8)]
    with process_engine() as ctx:
        with pytest.raises(SerializationError) as excinfo:
            ctx.parallelize(data, 4).collect()
        assert "parallelize" in str(excinfo.value)


def test_thread_backend_accepts_unpicklable_closures():
    """The preflight is a process-backend concern only."""
    lock = threading.Lock()
    with thread_engine() as ctx:
        result = ctx.parallelize(range(5), 2).map(lambda x: (x, lock)).count()
        assert result == 5


# -- transport-file lifecycle --------------------------------------------------


def transport_files(ctx) -> list:
    root = ctx._spill_root
    if root is None:
        return []
    transport_root = os.path.join(root, "transport")
    if not os.path.isdir(transport_root):
        return []
    found = []
    for dirpath, _dirnames, filenames in os.walk(transport_root):
        found.extend(os.path.join(dirpath, name) for name in filenames)
    return sorted(found)


def test_transport_files_exist_while_shuffle_lives_and_die_with_stop():
    ctx = process_engine()
    ds = ctx.parallelize(DATA, 4).group_by_key(4)
    ds.collect()
    files = transport_files(ctx)
    assert any("shuffle-" in path for path in files), \
        "map output must live in transport frame files"
    root = ctx._spill_root
    ctx.stop()
    assert not os.path.isdir(root)


def test_failed_job_sweeps_incomplete_shuffle_transport_files():
    def explode(pair):
        if pair[1] == 799:
            raise ValueError("boom")
        return pair

    ctx = process_engine(max_task_retries=0)
    try:
        ds = ctx.parallelize(DATA, 4).map(explode).group_by_key(4)
        with pytest.raises(TaskError):
            ds.collect()
        assert not any("shuffle-" in path for path in transport_files(ctx))
    finally:
        ctx.stop()


# -- configuration surface -----------------------------------------------------


def test_invalid_backend_rejected():
    with pytest.raises(ConfigurationError):
        EngineConfig(executor_backend="fiber")


def test_thread_backend_uses_no_transport():
    with thread_engine() as ctx:
        ctx.parallelize(DATA, 4).group_by_key(4).collect()
        assert ctx._transport is None
        assert not transport_files(ctx)
