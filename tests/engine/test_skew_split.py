"""Skew-aware adaptive execution: runtime reduce-partition splitting.

The ``split_skewed_shuffle`` rule stamps a per-reduce-partition split plan
onto completed shuffles whose actual map-output bytes mark a partition as a
straggler; the scheduler then serves those partitions as parallel sub-reads
over disjoint map-output slices and re-merges the partials.  The contract
under test everywhere: split and unsplit plans return *identical* results
(same records, same order) and identical record counts, for every wide
operator, every batch size and every nasty key distribution.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.dataset import (combiner_slice_merge, distinct_slice_merge,
                                  grouping_slice_merge, sorted_slice_merge)
from repro.engine.optimizer import _balanced_ranges


def split_engine(batch_size: int = 1024, **overrides) -> EngineContext:
    """An engine with skew splitting armed aggressively (tiny byte floor)."""
    overrides.setdefault("skew_split_factor", 4)
    overrides.setdefault("skew_min_partition_bytes", 1)
    return EngineContext(EngineConfig(num_workers=2, default_parallelism=4,
                                      seed=1, batch_size=batch_size,
                                      **overrides))


def plain_engine(batch_size: int = 1024, **overrides) -> EngineContext:
    """The same engine with skew splitting disabled."""
    return EngineContext(EngineConfig(num_workers=2, default_parallelism=4,
                                      seed=1, batch_size=batch_size,
                                      skew_split_factor=0, **overrides))


# -- datasets exercising the skew corners ------------------------------------

DATASETS = {
    # one key holds ~85% of all records
    "extreme-skew": [(0 if i % 20 < 17 else i % 7 + 1, i) for i in range(600)],
    # literally a single key: the hot partition is the only non-empty one
    "single-hot-key": [(42, i) for i in range(400)],
    # duplicate (key, value) pairs everywhere
    "duplicate-pairs": [(i % 3, i % 5) for i in range(500)],
    # most partitions empty: keys hash to one reduce partition
    "empty-partitions": [(4, i) for i in range(300)] + [(8, i) for i in range(50)],
}

PIPELINES = {
    "group_by_key": lambda ds, other: ds.group_by_key(4),
    "reduce_by_key": lambda ds, other: ds.reduce_by_key(lambda a, b: a + b, 4),
    "combine_by_key": lambda ds, other: ds.combine_by_key(
        lambda v: [v], lambda acc, v: acc + [v], lambda a, b: a + b, 4),
    "distinct": lambda ds, other: ds.distinct(4),
    "sort_by": lambda ds, other: ds.sort_by(lambda pair: pair[0], True, 4),
    "repartition": lambda ds, other: ds.repartition(4),
    "join": lambda ds, other: ds.join(other, 4),
    "left_outer_join": lambda ds, other: ds.left_outer_join(other, 4),
    "right_outer_join": lambda ds, other: ds.right_outer_join(other, 4),
    "full_outer_join": lambda ds, other: ds.full_outer_join(other, 4),
    "subtract_by_key": lambda ds, other: ds.subtract_by_key(other, 4),
    "cogroup": lambda ds, other: ds.cogroup(other, 4),
}

OTHER_SIDE = [(k, f"dim-{k}") for k in range(0, 50, 2)]


def run_pipeline(make_engine, pipeline_name: str, data, batch_size: int):
    """Run one pipeline twice (shuffle + reuse) and return results/metrics."""
    build = PIPELINES[pipeline_name]
    with make_engine(batch_size=batch_size,
                     broadcast_threshold_bytes=0) as ctx:
        ds = build(ctx.parallelize(data, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()  # shuffle output reused; splits re-applied
        summary = ctx.metrics.summary()
        counts = (summary["records_read"], summary["records_written"])
        return first, second, counts, summary["skew_splits"]


@pytest.mark.parametrize("batch_size", [0, 1, 1024])
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_split_matches_unsplit_exactly(pipeline_name, batch_size):
    """Split and unsplit plans agree record-for-record, in order."""
    data = DATASETS["extreme-skew"]
    split_first, split_second, split_counts, splits = run_pipeline(
        split_engine, pipeline_name, data, batch_size)
    plain_first, plain_second, plain_counts, none = run_pipeline(
        plain_engine, pipeline_name, data, batch_size)
    assert split_first == plain_first
    assert split_second == plain_second
    assert split_counts == plain_counts
    assert none == 0


@pytest.mark.parametrize("dataset_name", sorted(DATASETS))
@pytest.mark.parametrize("pipeline_name",
                         ["group_by_key", "reduce_by_key", "join", "cogroup"])
def test_split_parity_across_key_distributions(pipeline_name, dataset_name):
    data = DATASETS[dataset_name]
    split_first, split_second, split_counts, _ = run_pipeline(
        split_engine, pipeline_name, data, 1024)
    plain_first, plain_second, plain_counts, _ = run_pipeline(
        plain_engine, pipeline_name, data, 1024)
    assert split_first == plain_first
    assert split_second == plain_second
    assert split_counts == plain_counts


def test_skewed_group_by_actually_splits():
    data = DATASETS["extreme-skew"]
    _, _, _, splits = run_pipeline(split_engine, "group_by_key", data, 1024)
    assert splits >= 2  # both the warm-up run and the reuse run split


def test_combined_aggregation_splits_and_re_merges_via_combiner():
    """A fat combined partition (list combiners) splits and re-merges."""
    _, _, _, splits = run_pipeline(
        split_engine, "combine_by_key", DATASETS["single-hot-key"], 1024)
    assert splits >= 2


def test_split_shrinks_the_straggler_task():
    """The hot partition's reduce work spreads over sub-read tasks."""
    data = [(0 if i % 10 < 9 else i % 5 + 1, i) for i in range(40_000)]

    def straggler(make_engine):
        with make_engine(broadcast_threshold_bytes=0) as ctx:
            ds = ctx.parallelize(data, 4).group_by_key(4)
            ds.collect()
            ds.collect()
            job = ctx.metrics.jobs[-1]
            return max(stage.max_task_duration_s for stage in job.stages), job

    split_longest, split_job = straggler(split_engine)
    plain_longest, _ = straggler(plain_engine)
    assert split_job.skew_splits >= 1
    assert any(stage.name.startswith("skew-split:")
               for stage in split_job.stages)
    assert split_longest < plain_longest


def test_split_preserves_shuffle_read_accounting():
    """Sub-reads account exactly the bytes the unsplit read would."""
    data = DATASETS["extreme-skew"]

    def read_bytes(make_engine):
        with make_engine() as ctx:
            ds = ctx.parallelize(data, 4).group_by_key(4)
            ds.collect()
            ds.collect()
            job = ctx.metrics.jobs[-1]
            return sum(stage.shuffle_bytes_read for stage in job.stages)

    assert read_bytes(split_engine) == read_bytes(plain_engine)


def test_no_split_when_rule_disabled_via_rules_tuple():
    data = DATASETS["extreme-skew"]
    rules = tuple(rule for rule in EngineConfig().optimizer_rules
                  if rule != "split_skewed_shuffle")
    with split_engine(optimizer_rules=rules) as ctx:
        ds = ctx.parallelize(data, 4).group_by_key(4)
        ds.collect()
        ds.collect()
        assert ctx.metrics.summary()["skew_splits"] == 0


def test_no_split_below_byte_floor():
    data = DATASETS["extreme-skew"]
    with split_engine(skew_min_partition_bytes=32 * 1024 * 1024) as ctx:
        ds = ctx.parallelize(data, 4).group_by_key(4)
        ds.collect()
        ds.collect()
        assert ctx.metrics.summary()["skew_splits"] == 0


def test_uncombined_aggregation_is_never_split():
    """Disabling map-side combining signals non-associative combiners; the
    skew rule must not re-merge through them either (the uncombined dataset
    carries no slice spec, so it reports supports_slice_reads=False)."""
    data = DATASETS["extreme-skew"]
    rules = tuple(rule for rule in EngineConfig().optimizer_rules
                  if rule != "map_side_combine")
    with split_engine(optimizer_rules=rules) as ctx:
        ds = ctx.parallelize(data, 4).reduce_by_key(lambda a, b: a + b, 4)
        ds.collect()
        ds.collect()
        assert ctx.metrics.summary()["skew_splits"] == 0


def test_skewed_shuffle_feeding_a_downstream_shuffle_splits():
    """A skewed group_by_key consumed by a later sort's map stage is served
    as sub-reads before that map stage, not only before result stages."""
    data = DATASETS["extreme-skew"]

    def run(make_engine):
        with make_engine() as ctx:
            ds = (ctx.parallelize(data, 4).group_by_key(4)
                  .map_values(len).sort_by(lambda pair: -pair[1], True, 4))
            first = ds.collect()
            second = ds.collect()
            job_names = [stage.name
                         for job in ctx.metrics.jobs for stage in job.stages]
            return first, second, job_names, ctx.metrics.summary()["skew_splits"]

    split_first, split_second, names, splits = run(split_engine)
    plain_first, plain_second, _, _ = run(plain_engine)
    assert split_first == plain_first
    assert split_second == plain_second
    assert splits >= 1
    assert any(name.startswith("skew-split:") for name in names)


def test_explain_renders_split_decision():
    data = DATASETS["extreme-skew"]
    with split_engine() as ctx:
        ds = ctx.parallelize(data, 4).group_by_key(4)
        ds.collect()
        text = ds.explain()
        assert "skew split:" in text
        assert "sub-reads" in text
        assert "hot" in text  # the sampled heavy-hitter share


def test_cached_split_dataset_serves_blocks_not_subreads():
    data = DATASETS["extreme-skew"]
    with split_engine() as ctx:
        ds = ctx.parallelize(data, 4).group_by_key(4).cache()
        first = ds.collect()   # materialises the cache (splits may apply)
        second = ds.collect()  # served from blocks: no sub-read stage
        assert first == second
        job = ctx.metrics.jobs[-1]
        assert not any(stage.name.startswith("skew-split:")
                       for stage in job.stages)
        assert job.cache_hits == 4


# -- slice-merge semantics in isolation --------------------------------------


class TestSliceMergeFactories:
    def test_grouping_slices_match_single_pass(self):
        slice_reduce, merge = grouping_slice_merge()
        slices = [[(1, "a"), (2, "b")], [(2, "c"), (3, "d")], [(1, "e")]]
        merged = dict(merge([slice_reduce(part) for part in slices]))
        assert merged == {1: ["a", "e"], 2: ["b", "c"], 3: ["d"]}

    def test_grouping_preserves_first_appearance_order(self):
        slice_reduce, merge = grouping_slice_merge()
        slices = [[(9, 1)], [(2, 1), (9, 2)]]
        keys = [key for key, _ in merge([slice_reduce(p) for p in slices])]
        assert keys == [9, 2]

    def test_combiner_slices_re_merge_through_combiner(self):
        slice_reduce, merge = combiner_slice_merge(lambda a, b: a + b)
        slices = [[(1, 10), (2, 5)], [(1, 7)]]
        assert dict(merge([slice_reduce(p) for p in slices])) == {1: 17, 2: 5}

    def test_distinct_slices_dedupe_across_slices(self):
        slice_reduce, merge = distinct_slice_merge()
        slices = [[3, 1, 3, 2], [2, 4, 1]]
        assert merge([slice_reduce(p) for p in slices]) == [3, 1, 2, 4]

    def test_sorted_slices_merge_stably(self):
        slice_reduce, merge = sorted_slice_merge(lambda pair: pair[0], True)
        slices = [[(2, "s0a"), (1, "s0b")], [(1, "s1a"), (2, "s1b")]]
        merged = merge([slice_reduce(p) for p in slices])
        # equal keys keep slice order (stable merge, earlier slice first)
        assert merged == [(1, "s0b"), (1, "s1a"), (2, "s0a"), (2, "s1b")]

    def test_sorted_slices_descending(self):
        slice_reduce, merge = sorted_slice_merge(lambda v: v, False)
        slices = [[9, 4, 1], [8, 3]]
        assert merge([slice_reduce(p) for p in slices]) == [9, 8, 4, 3, 1]


class TestBalancedRanges:
    def test_covers_the_whole_index_space(self):
        ranges = _balanced_ranges([(m, 10) for m in range(8)], 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 8
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo

    def test_uniform_bytes_split_evenly(self):
        assert _balanced_ranges([(m, 10) for m in range(8)], 4) == \
            [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_never_cuts_inside_a_dominant_bucket(self):
        ranges = _balanced_ranges([(0, 1000), (1, 1), (2, 1), (3, 1)], 4)
        assert ranges[0] == (0, 1)
        assert ranges[0][1] - ranges[0][0] == 1

    def test_single_range_when_not_worth_splitting(self):
        assert _balanced_ranges([(0, 5), (1, 5)], 1) == [(0, 2)]
        assert _balanced_ranges([(0, 0), (1, 0)], 4) == [(0, 2)]


# -- property test: random skewed workloads ----------------------------------


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pairs=st.lists(
        st.tuples(st.sampled_from([0, 0, 0, 0, 0, 1, 2, 3]),
                  st.integers(min_value=-50, max_value=50)),
        min_size=0, max_size=300),
    batch_size=st.sampled_from([0, 1, 1024]),
    pipeline_name=st.sampled_from(
        ["group_by_key", "reduce_by_key", "distinct", "sort_by", "join"]),
)
def test_property_split_parity(pairs, batch_size, pipeline_name):
    split_first, split_second, split_counts, _ = run_pipeline(
        split_engine, pipeline_name, pairs, batch_size)
    plain_first, plain_second, plain_counts, _ = run_pipeline(
        plain_engine, pipeline_name, pairs, batch_size)
    assert split_first == plain_first
    assert split_second == plain_second
    assert split_counts == plain_counts
