"""Partitioners: stability, range partitioning, bounds."""

from __future__ import annotations

import pytest

from repro.engine.partitioner import (HashPartitioner, RangePartitioner,
                                      RoundRobinPartitioner, _stable_hash)
from repro.errors import PlanError


class TestStableHash:
    def test_strings_are_stable_across_calls(self):
        assert _stable_hash("customer-42") == _stable_hash("customer-42")

    def test_different_strings_differ(self):
        assert _stable_hash("abc") != _stable_hash("abd")

    def test_handles_none_and_bools(self):
        assert _stable_hash(None) == 0
        assert _stable_hash(True) != _stable_hash(False)

    def test_handles_tuples_structurally(self):
        assert _stable_hash((1, "a")) == _stable_hash((1, "a"))
        assert _stable_hash((1, "a")) != _stable_hash(("a", 1))

    def test_handles_bytes_and_floats(self):
        assert _stable_hash(b"xy") == _stable_hash(b"xy")
        assert _stable_hash(2.5) == _stable_hash(2.5)

    def test_always_non_negative(self):
        for value in (-5, "z", (1, 2, 3), -3.7, frozenset({1, 2})):
            assert _stable_hash(value) >= 0


class TestHashPartitioner:
    def test_partition_in_range(self):
        partitioner = HashPartitioner(7)
        assert all(0 <= partitioner.partition_for(key) < 7 for key in range(200))

    def test_same_key_same_partition(self):
        partitioner = HashPartitioner(5)
        assert partitioner.partition_for("k") == partitioner.partition_for("k")

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_rejects_zero_partitions(self):
        with pytest.raises(PlanError):
            HashPartitioner(0)

    def test_spreads_keys_reasonably(self):
        partitioner = HashPartitioner(4)
        counts = [0] * 4
        for key in range(1000):
            counts[partitioner.partition_for(f"key-{key}")] += 1
        assert min(counts) > 150


class TestRangePartitioner:
    def test_from_sample_orders_keys(self):
        partitioner = RangePartitioner.from_sample(list(range(100)), 4)
        assert partitioner.partition_for(1) <= partitioner.partition_for(50)
        assert partitioner.partition_for(50) <= partitioner.partition_for(99)

    def test_single_partition(self):
        partitioner = RangePartitioner.from_sample([5, 1, 3], 1)
        assert partitioner.partition_for(100) == 0

    def test_descending_order(self):
        partitioner = RangePartitioner.from_sample(list(range(100)), 4, ascending=False)
        assert partitioner.partition_for(0) >= partitioner.partition_for(99)

    def test_empty_sample_assigns_everything_to_partition_zero(self):
        partitioner = RangePartitioner.from_sample([], 3)
        assert partitioner.partition_for(42) == 0

    def test_key_function_applied(self):
        partitioner = RangePartitioner.from_sample(
            ["a", "bbb", "cc", "dddd"], 2, key_func=len)
        assert partitioner.partition_for("x") <= partitioner.partition_for("xxxxx")

    def test_result_within_bounds(self):
        partitioner = RangePartitioner.from_sample(list(range(10)), 4)
        for key in (-100, 0, 5, 9, 1000):
            assert 0 <= partitioner.partition_for(key) < 4


class TestRoundRobinPartitioner:
    def test_cycles_through_partitions(self):
        partitioner = RoundRobinPartitioner(3, seed=0)
        assigned = [partitioner.partition_for(None) for _ in range(9)]
        assert sorted(assigned) == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_balanced_for_any_key(self):
        partitioner = RoundRobinPartitioner(4, seed=2)
        counts = [0] * 4
        for _ in range(100):
            counts[partitioner.partition_for("same-key")] += 1
        assert max(counts) == 25
