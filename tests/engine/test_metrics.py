"""Metrics dataclasses: task/stage/job aggregation and merging."""

from __future__ import annotations

import time

import pytest

from repro.engine.metrics import (JobMetrics, MetricsRegistry, StageMetrics,
                                  TaskMetrics, merge_job_metrics)


def _task(duration=0.5, records=10, failed=False, shuffle_write=100):
    return TaskMetrics(task_id="t", stage_id=0, partition_index=0,
                       duration_s=duration, records_read=records,
                       records_written=records, shuffle_bytes_written=shuffle_write,
                       failed=failed)


class TestStageMetrics:
    def test_add_task_aggregates(self):
        stage = StageMetrics(stage_id=0, name="s")
        stage.add_task(_task(duration=0.5, records=10))
        stage.add_task(_task(duration=1.5, records=20))
        assert stage.num_tasks == 2
        assert stage.duration_s == pytest.approx(2.0)
        assert stage.records_read == 30
        assert stage.shuffle_bytes_written == 200
        assert stage.max_task_duration_s == 1.5

    def test_failed_tasks_counted_but_not_in_max_duration(self):
        stage = StageMetrics(stage_id=0)
        stage.add_task(_task(duration=9.0, failed=True))
        stage.add_task(_task(duration=1.0))
        assert stage.num_failed_attempts == 1
        assert stage.max_task_duration_s == 1.0

    def test_empty_stage(self):
        stage = StageMetrics(stage_id=0)
        assert stage.max_task_duration_s == 0.0
        assert stage.as_dict()["num_tasks"] == 0

    def test_as_dict_roundtrip_keys(self):
        stage = StageMetrics(stage_id=3, name="shuffle:x", is_shuffle_map=True)
        as_dict = stage.as_dict()
        assert as_dict["stage_id"] == 3
        assert as_dict["is_shuffle_map"] is True


class TestJobMetrics:
    def _job(self):
        job = JobMetrics(job_id=1, description="test job")
        stage = StageMetrics(stage_id=0)
        stage.add_task(_task(duration=0.25, records=5))
        job.add_stage(stage)
        return job

    def test_aggregates(self):
        job = self._job()
        assert job.num_stages == 1
        assert job.num_tasks == 1
        assert job.total_task_time_s == pytest.approx(0.25)
        assert job.records_read == 5
        assert job.shuffle_bytes == 100

    def test_wall_clock_uses_finish_time(self):
        job = self._job()
        assert job.finished_at is None
        running_wall_clock = job.wall_clock_s
        assert running_wall_clock >= 0
        job.finish()
        assert job.finished_at is not None
        assert job.wall_clock_s >= 0

    def test_as_dict(self):
        as_dict = self._job().as_dict()
        assert as_dict["description"] == "test job"
        assert as_dict["num_tasks"] == 1

    def test_task_metrics_as_dict(self):
        as_dict = _task().as_dict()
        assert as_dict["duration_s"] == 0.5
        assert as_dict["failed"] is False


class TestMergeAndRegistry:
    def test_merge_job_metrics(self):
        jobs = []
        for index in range(3):
            job = JobMetrics(job_id=index)
            stage = StageMetrics(stage_id=index)
            stage.add_task(_task(duration=1.0, records=10))
            job.add_stage(stage)
            job.finish()
            jobs.append(job)
        merged = merge_job_metrics(jobs)
        assert merged["num_jobs"] == 3
        assert merged["total_task_time_s"] == pytest.approx(3.0)
        assert merged["records_read"] == 30

    def test_merge_empty(self):
        assert merge_job_metrics([])["num_jobs"] == 0

    def test_registry_collects_and_resets(self):
        registry = MetricsRegistry()
        job = JobMetrics(job_id=0)
        job.finish()
        registry.register(job)
        assert len(registry.jobs) == 1
        assert registry.summary()["num_jobs"] == 1
        registry.reset()
        assert registry.jobs == []
