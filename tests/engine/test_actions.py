"""Dataset actions: collect, count, reduce, aggregates, take/top, stats."""

from __future__ import annotations

import pytest

from repro.errors import PlanError


class TestCounting:
    def test_count(self, engine):
        assert engine.range(123, num_partitions=5).count() == 123

    def test_count_empty(self, engine):
        assert engine.empty().count() == 0

    def test_count_by_value(self, engine):
        ds = engine.parallelize(list("aabbbc"), 3)
        assert ds.count_by_value() == {"a": 2, "b": 3, "c": 1}


class TestTakeFirstTop:
    def test_take_returns_prefix(self, engine):
        assert engine.range(100, num_partitions=4).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, engine):
        assert engine.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_take_zero(self, engine):
        assert engine.range(10).take(0) == []

    def test_take_scans_partitions_lazily(self, engine):
        # only the first partition is needed to produce 2 records
        ds = engine.range(100, num_partitions=4)
        assert ds.take(2) == [0, 1]

    def test_first(self, engine):
        assert engine.parallelize(["x", "y"], 2).first() == "x"

    def test_first_on_empty_raises(self, engine):
        with pytest.raises(PlanError):
            engine.empty().first()

    def test_top_default_order(self, engine):
        assert engine.parallelize([5, 1, 9, 3], 2).top(2) == [9, 5]

    def test_top_with_key(self, engine):
        words = ["bb", "a", "dddd", "ccc"]
        assert engine.parallelize(words, 2).top(2, key=len) == ["dddd", "ccc"]


class TestReductions:
    def test_reduce_sum(self, engine):
        assert engine.range(101, num_partitions=4).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_raises(self, engine):
        with pytest.raises(PlanError):
            engine.empty().reduce(lambda a, b: a + b)

    def test_reduce_with_empty_partitions(self, engine):
        ds = engine.parallelize([7], 4)
        assert ds.reduce(lambda a, b: a + b) == 7

    def test_fold(self, engine):
        assert engine.range(10, num_partitions=3).fold(0, lambda a, b: a + b) == 45

    def test_fold_on_empty_returns_zero_value(self, engine):
        assert engine.empty().fold(99, lambda a, b: a + b) == 99

    def test_aggregate_count_and_sum(self, engine):
        count, total = engine.range(10, num_partitions=3).aggregate(
            (0, 0), lambda acc, x: (acc[0] + 1, acc[1] + x),
            lambda a, b: (a[0] + b[0], a[1] + b[1]))
        assert (count, total) == (10, 45)

    def test_sum_mean_min_max(self, engine):
        ds = engine.parallelize([4.0, 8.0, 6.0], 2)
        assert ds.sum() == pytest.approx(18.0)
        assert ds.mean() == pytest.approx(6.0)
        assert ds.min() == 4.0
        assert ds.max() == 8.0

    def test_mean_of_empty_raises(self, engine):
        with pytest.raises(PlanError):
            engine.empty().mean()

    def test_min_max_with_key(self, engine):
        records = [{"v": 3}, {"v": 9}, {"v": 1}]
        ds = engine.parallelize(records, 2)
        assert ds.min(key=lambda r: r["v"]) == {"v": 1}
        assert ds.max(key=lambda r: r["v"]) == {"v": 9}


class TestStatsAndHistogram:
    def test_stats_basic(self, engine):
        stats = engine.parallelize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0], 3).stats()
        assert stats["count"] == 8
        assert stats["mean"] == pytest.approx(5.0)
        assert stats["stdev"] == pytest.approx(2.0)
        assert stats["min"] == 2.0
        assert stats["max"] == 9.0

    def test_stats_empty(self, engine):
        stats = engine.empty().stats()
        assert stats["count"] == 0

    def test_histogram_even_buckets(self, engine):
        edges, counts = engine.range(100, num_partitions=4).histogram(4)
        assert len(edges) == 5
        assert counts == [25, 25, 25, 25]

    def test_histogram_constant_values(self, engine):
        edges, counts = engine.parallelize([3.0] * 7, 2).histogram(5)
        assert counts == [7]

    def test_histogram_rejects_zero_buckets(self, engine):
        with pytest.raises(PlanError):
            engine.range(10).histogram(0)

    def test_histogram_empty_dataset(self, engine):
        assert engine.empty().histogram(3) == ([], [])


class TestOtherActions:
    def test_collect_as_map(self, engine):
        assert engine.parallelize([("a", 1), ("b", 2)], 2).collect_as_map() == \
            {"a": 1, "b": 2}

    def test_lookup(self, engine):
        pairs = engine.parallelize([("a", 1), ("b", 2), ("a", 3)], 3)
        assert sorted(pairs.lookup("a")) == [1, 3]
        assert pairs.lookup("missing") == []

    def test_foreach_visits_every_record(self, engine):
        seen = []
        engine.range(10, num_partitions=1).foreach(seen.append)
        assert sorted(seen) == list(range(10))

    def test_to_local_iterator(self, engine):
        ds = engine.range(25, num_partitions=5)
        assert list(ds.to_local_iterator()) == list(range(25))
