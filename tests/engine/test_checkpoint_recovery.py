"""Durable checkpointing, the job journal, and driver-crash recovery.

The contract under test: a context configured with ``checkpoint_dir``
journals settled shuffles and materialised checkpoints with atomic
tmp+rename+fsync writes, and a context started with ``recover_from``
replays that journal — revalidating every recorded span and checkpoint
file by CRC — so a driver killed with SIGKILL mid-job resumes with
*byte-identical* results and ``stages_recovered > 0``, on both executor
backends.  The journal is a hint, never a correctness dependency: a
corrupted or truncated journal, span, or checkpoint file degrades to
lineage recomputation with identical results — never a wrong answer.

Also covered here (same PR): ``NodeHealthTracker`` blacklist cooldown
rehabilitation driven by a fake clock, ``ShuffleServer`` graceful
shutdown drain and bounded EADDRINUSE bind retry, ``RetryPolicy`` edge
cases, and heartbeat-file cleanup after ``EngineContext.stop()``.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.config import EngineConfig
from repro.engine import serializer
from repro.engine.context import EngineContext
from repro.engine.journal import (JOURNAL_NAME, JobJournal, atomic_write_bytes,
                                  load_journal_state,
                                  validate_checkpoint_entry,
                                  validate_shuffle_entry)
from repro.engine.memory import CODEC_NONE, dump_frames, load_frames
from repro.engine.retry import RetryPolicy
from repro.engine.scheduler import NodeHealthTracker
from repro.engine.shuffle_server import (AddressInUseError, ShuffleFetchClient,
                                         ShuffleServer)
from repro.errors import ConfigurationError

_HAVE_CLOSURES = serializer.supports_closures()

needs_closures = pytest.mark.skipif(
    not _HAVE_CLOSURES,
    reason="shipping task closures to worker processes needs cloudpickle")

BACKENDS = ["thread", pytest.param("process", marks=needs_closures)]

_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def make_engine(backend: str, root=None, **overrides):
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "executor_backend": backend}
    if root is not None:
        options["checkpoint_dir"] = str(root)
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def build_pipeline(ctx):
    """Two chained shuffles — enough structure for journal/adoption tests."""
    pairs = ctx.range(0, 240).map(lambda x: (x % 7, x))
    totals = pairs.reduce_by_key(lambda a, b: a + b)
    return totals.map(lambda kv: (kv[0] % 3, kv[1])).reduce_by_key(
        lambda a, b: a + b)


def run_cold(backend: str):
    with make_engine(backend) as ctx:
        return sorted(build_pipeline(ctx).collect())


# -- journal primitives --------------------------------------------------------


def test_atomic_write_bytes_is_all_or_nothing(tmp_path):
    path = str(tmp_path / "doc.json")
    atomic_write_bytes(path, b"first version")
    atomic_write_bytes(path, b"second version")
    with open(path, "rb") as handle:
        assert handle.read() == b"second version"
    # no temporary droppings survive a successful rename
    assert os.listdir(tmp_path) == ["doc.json"]


def test_load_journal_state_treats_damage_as_absence(tmp_path):
    assert load_journal_state(str(tmp_path / "nowhere")) is None
    path = tmp_path / JOURNAL_NAME
    path.write_bytes(b'{"version": 1, "shuffles": ')  # truncated mid-write
    assert load_journal_state(str(tmp_path)) is None
    path.write_bytes(b'{"version": 999, "shuffles": {}, "checkpoints": {}}')
    assert load_journal_state(str(tmp_path)) is None
    # version-1 journals keyed shuffles by bare id — unsafe to resume from
    path.write_bytes(b'{"version": 1, "shuffles": {}, "checkpoints": {}}')
    assert load_journal_state(str(tmp_path)) is None
    path.write_bytes(b'[1, 2, 3]')
    assert load_journal_state(str(tmp_path)) is None


def test_journal_records_reload_across_instances(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.record_job(0, "job-zero", "sig-0")
    journal.record_stage(0, "shuffle:0:map")
    journal.record_shuffle("shuffle:0", 0, 2, 1, {
        "maps": [0, 1],
        "buckets": {(0, 0): ("a.data", 0, 10, 3, 10),
                    (1, 0): ("b.data", 0, 12, 4, 12)},
    })
    journal.record_checkpoint("ckpt-key", "totals", 2,
                              ["p0.data", "p1.data"], [3, 4])
    assert journal.drain_bytes_written() > 0
    assert journal.drain_bytes_written() == 0  # drained means drained

    # a second instance over the same directory resumes the same state:
    # repeated crashes must not lose entries the first run journaled
    reloaded = JobJournal(str(tmp_path))
    state = load_journal_state(reloaded.directory)
    assert state["jobs"][0]["stages"] == ["shuffle:0:map"]
    assert state["shuffles"]["shuffle:0"]["num_maps"] == 2
    assert state["shuffles"]["shuffle:0"]["num_reduces"] == 1
    assert state["checkpoints"]["ckpt-key"]["rows"] == [3, 4]

    reloaded.forget_shuffle("shuffle:0")
    reloaded.forget_checkpoint("ckpt-key")
    state = load_journal_state(reloaded.directory)
    assert state["shuffles"] == {} and state["checkpoints"] == {}


def _write_frames(path, records):
    payload = dump_frames(records, CODEC_NONE)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def _flip_byte(path, position):
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[position] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


def test_validate_shuffle_entry_drops_corrupt_maps_wholesale(tmp_path):
    good = str(tmp_path / "map0.data")
    bad = str(tmp_path / "map1.data")
    good_len = _write_frames(good, [(1, "a"), (2, "b")])
    bad_len = _write_frames(bad, [(3, "c")])
    entry = {"shuffle_id": 0, "num_maps": 2, "maps": [0, 1],
             "spans": [[0, 0, good, 0, good_len, 2, good_len],
                       [1, 0, bad, 0, bad_len, 1, bad_len]]}

    per_map, num_maps, invalid = validate_shuffle_entry(entry)
    assert num_maps == 2 and invalid == 0
    assert sorted(per_map) == [0, 1]
    assert per_map[0][0] == (good, 0, good_len, 2, good_len)

    # flip a payload byte: the CRC check must reject the span and the
    # whole map partition with it — never serve a half-restored output
    _flip_byte(bad, -1)
    per_map, _, invalid = validate_shuffle_entry(entry)
    assert invalid == 1
    assert sorted(per_map) == [0]

    os.remove(bad)  # missing is just as invalid as corrupt
    per_map, _, invalid = validate_shuffle_entry(entry)
    assert invalid == 1 and sorted(per_map) == [0]

    assert validate_shuffle_entry({"nonsense": True}) == ({}, 0, 1)


def test_validate_checkpoint_entry_is_all_or_nothing(tmp_path):
    p0 = str(tmp_path / "p0.data")
    p1 = str(tmp_path / "p1.data")
    _write_frames(p0, [1, 2, 3])
    _write_frames(p1, [4, 5])
    entry = {"name": "ds", "num_partitions": 2, "files": [p0, p1],
             "rows": [3, 2]}
    assert validate_checkpoint_entry(entry) == (True, 0)

    with open(p1, "r+b") as handle:  # truncate one partition
        handle.truncate(4)
    assert validate_checkpoint_entry(entry) == (False, 1)

    assert validate_checkpoint_entry({"files": "not-a-list"}) == (False, 1)
    assert validate_checkpoint_entry(
        {"name": "ds", "num_partitions": 3, "files": [p0, p1],
         "rows": [3, 2]}) == (False, 1)


# -- Dataset.checkpoint() ------------------------------------------------------


def test_checkpoint_requires_checkpoint_dir():
    with make_engine("thread") as ctx:
        ds = ctx.range(0, 8).map(lambda x: x * 2)
        with pytest.raises(ConfigurationError):
            ds.checkpoint()


def test_checkpoint_interval_requires_checkpoint_dir():
    with pytest.raises(ConfigurationError):
        EngineConfig(checkpoint_interval=2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_serves_identical_results(tmp_path, backend):
    expected = run_cold(backend)
    with make_engine(backend, tmp_path / "ckpt") as ctx:
        ds = build_pipeline(ctx)
        before = sorted(ds.collect())
        ds.checkpoint()
        assert ds.has_checkpoint
        after = sorted(ds.collect())
        assert before == after == expected
        ds.checkpoint()  # idempotent: no second materialisation
        summary = ctx.metrics.summary()
    assert summary["checkpoints_written"] == 1
    files = os.listdir(tmp_path / "ckpt" / "checkpoints")
    assert len(files) > 0 and all(name.endswith(".data") for name in files)


def test_corrupt_checkpoint_degrades_to_lineage(tmp_path):
    expected = run_cold("thread")
    with make_engine("thread", tmp_path / "ckpt") as ctx:
        ds = build_pipeline(ctx).checkpoint()
        directory = os.path.join(str(tmp_path / "ckpt"), "checkpoints")
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), "r+b") as handle:
                handle.truncate(3)
        # the poisoned read must fall back to recomputing from lineage —
        # identical answer, corruption only visible in the metrics
        assert sorted(ds.collect()) == expected
        assert not ds.has_checkpoint
        summary = ctx.metrics.summary()
    assert summary["recovery_invalid_entries"] >= 1


def test_auto_checkpoint_interval_materialises_shuffle_consumers(tmp_path):
    with make_engine("thread", tmp_path / "ckpt",
                     checkpoint_interval=1) as ctx:
        result = sorted(build_pipeline(ctx).collect())
        summary = ctx.metrics.summary()
    assert result == run_cold("thread")
    assert summary["checkpoints_written"] >= 1
    assert os.listdir(tmp_path / "ckpt" / "checkpoints")


# -- resume-on-restart ---------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_adopts_journaled_shuffles(tmp_path, backend):
    root = tmp_path / "ckpt"
    with make_engine(backend, root) as ctx:
        expected = sorted(build_pipeline(ctx).collect())
    assert os.path.exists(root / JOURNAL_NAME)

    with make_engine(backend, root, recover_from=str(root)) as ctx:
        resumed = sorted(build_pipeline(ctx).collect())
        summary = ctx.metrics.summary()
    assert resumed == expected
    assert summary["stages_recovered"] > 0


def test_resume_adopts_journaled_checkpoint(tmp_path):
    root = tmp_path / "ckpt"
    with make_engine("thread", root) as ctx:
        ds = build_pipeline(ctx).checkpoint()
        expected = sorted(ds.collect())

    with make_engine("thread", root, recover_from=str(root)) as ctx:
        ds = build_pipeline(ctx).checkpoint()  # adopted, not rewritten
        assert ds.has_checkpoint
        resumed = sorted(ds.collect())
        summary = ctx.metrics.summary()
    assert resumed == expected
    assert summary["stages_recovered"] > 0
    assert summary["checkpoints_written"] == 0


def test_resume_from_garbage_journal_degrades_to_cold_start(tmp_path):
    root = tmp_path / "ckpt"
    os.makedirs(root)
    (root / JOURNAL_NAME).write_bytes(b"\x00garbage, not json\xff")
    with make_engine("thread", root, recover_from=str(root)) as ctx:
        result = sorted(build_pipeline(ctx).collect())
        summary = ctx.metrics.summary()
    assert result == run_cold("thread")
    assert summary["stages_recovered"] == 0
    assert summary["recovery_invalid_entries"] >= 1


def test_resume_with_corrupt_spans_recomputes_from_lineage(tmp_path):
    root = tmp_path / "ckpt"
    with make_engine("thread", root) as ctx:
        expected = sorted(build_pipeline(ctx).collect())

    # rot every durable span the journal recorded
    state = load_journal_state(str(root))
    assert state["shuffles"]
    for entry in state["shuffles"].values():
        for span in entry["spans"]:
            _flip_byte(span[2], span[3] + 4)

    with make_engine("thread", root, recover_from=str(root)) as ctx:
        resumed = sorted(build_pipeline(ctx).collect())
        summary = ctx.metrics.summary()
    assert resumed == expected
    assert summary["recovery_invalid_entries"] >= 1


def _run_once(tmp_path, map_func, data_end=240, **engine_kwargs):
    """One shuffle job over ``range(0, data_end).map(map_func)``."""
    with make_engine("thread", tmp_path / "ckpt", **engine_kwargs) as ctx:
        pairs = ctx.range(0, data_end).map(map_func)
        totals = sorted(pairs.reduce_by_key(lambda a, b: a + b).collect())
        return totals, ctx.metrics.summary()


def test_resume_never_adopts_a_changed_programs_map_output(tmp_path):
    """Same plan shape, same partition counts — only the map logic changed.

    Shuffle ids are per-context counters, so both programs use shuffle 0
    with identical num_maps; the spans on disk pass their CRCs.  Only the
    lineage-signature journal key stands between the resumed run and
    silently returning the *old* program's aggregates.
    """
    _run_once(tmp_path, lambda x: (x % 7, x))
    root = str(tmp_path / "ckpt")
    resumed, summary = _run_once(tmp_path, lambda x: (x % 7, x * 10),
                                 recover_from=root)
    with make_engine("thread") as ctx:
        expected = sorted(ctx.range(0, 240).map(lambda x: (x % 7, x * 10))
                          .reduce_by_key(lambda a, b: a + b).collect())
    assert resumed == expected
    assert summary["stages_recovered"] == 0


def test_resume_never_adopts_a_changed_inputs_map_output(tmp_path):
    """Identical program over different input data must not adopt either."""
    _run_once(tmp_path, lambda x: (x % 7, x), data_end=240)
    root = str(tmp_path / "ckpt")
    resumed, summary = _run_once(tmp_path, lambda x: (x % 7, x),
                                 data_end=260, recover_from=root)
    with make_engine("thread") as ctx:
        expected = sorted(ctx.range(0, 260).map(lambda x: (x % 7, x))
                          .reduce_by_key(lambda a, b: a + b).collect())
    assert resumed == expected
    assert summary["stages_recovered"] == 0


def test_resume_adopts_the_same_programs_map_output(tmp_path):
    """The twin control: an unchanged program still matches its entries."""
    expected, _ = _run_once(tmp_path, lambda x: (x % 7, x))
    root = str(tmp_path / "ckpt")
    resumed, summary = _run_once(tmp_path, lambda x: (x % 7, x),
                                 recover_from=root)
    assert resumed == expected
    assert summary["stages_recovered"] > 0


def test_forget_unlinks_invalidated_files_inside_journal_root(tmp_path):
    journal = JobJournal(str(tmp_path))
    span = tmp_path / "transport" / "shuffle-0" / "map-0.data"
    os.makedirs(span.parent)
    span.write_bytes(b"span bytes")
    ckpt = tmp_path / "checkpoints" / "ds-0-part-0.data"
    os.makedirs(ckpt.parent)
    ckpt.write_bytes(b"ckpt bytes")
    outside = tmp_path.parent / "not-ours.data"
    outside.write_bytes(b"keep me")
    try:
        journal.record_shuffle("shuffle:0:sig", 0, 1, 1, {
            "maps": [0], "buckets": {(0, 0): (str(span), 0, 10, 1, 10)}})
        journal.record_checkpoint("ckpt-key", "ds", 2,
                                  [str(ckpt), str(outside)], [1, 1])

        # superseding an entry unlinks the files it no longer references
        replacement = span.parent / "map-0.attempt2.data"
        replacement.write_bytes(b"fresh")
        journal.record_shuffle("shuffle:0:sig", 0, 1, 1, {
            "maps": [0],
            "buckets": {(0, 0): (str(replacement), 0, 5, 1, 5)}})
        assert not span.exists() and replacement.exists()

        journal.forget_shuffle("shuffle:0:sig")
        assert not replacement.exists()
        assert not replacement.parent.exists()  # emptied dir swept too
        journal.forget_checkpoint("ckpt-key")
        assert not ckpt.exists()
        assert outside.exists()  # never touches files outside its root
    finally:
        if outside.exists():
            outside.unlink()


# -- driver-kill harness -------------------------------------------------------

_VICTIM_SCRIPT = '''\
"""Recovery-test victim: SIGKILLs its driver once a shuffle is journaled."""
import os
import signal
import sys
import threading
import time

from repro.config import EngineConfig
from repro.engine.context import EngineContext

root, backend = sys.argv[1], sys.argv[2]


def watch():
    path = os.path.join(root, "journal.json")
    while True:
        try:
            with open(path, "r") as handle:
                if '"shuffle:' in handle.read():
                    os.kill(os.getpid(), signal.SIGKILL)
        except OSError:
            pass
        time.sleep(0.005)


threading.Thread(target=watch, daemon=True).start()

ctx = EngineContext(EngineConfig(
    num_workers=2, default_parallelism=4, seed=1,
    executor_backend=backend, checkpoint_dir=root))
pairs = ctx.range(0, 240).map(lambda x: (x % 7, x))
totals = pairs.reduce_by_key(lambda a, b: a + b)


def slow(kv):
    time.sleep(0.2)  # widen the window between shuffle 0 and job end
    return (kv[0] % 3, kv[1])


final = totals.map(slow).reduce_by_key(lambda a, b: a + b)
final.collect()
print("COMPLETED", flush=True)
'''


@pytest.mark.parametrize("backend", BACKENDS)
def test_driver_kill_then_resume_is_byte_identical(tmp_path, backend):
    root = str(tmp_path / "ckpt")
    script = tmp_path / "victim.py"
    script.write_text(_VICTIM_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")

    # output goes to a file, not a pipe: the SIGKILLed driver's orphaned
    # pool workers inherit stdout, and a pipe read would wait on *them*
    out_path = tmp_path / "victim.out"
    with open(out_path, "w") as out:
        victim = subprocess.Popen(
            [sys.executable, str(script), root, backend],
            stdout=out, stderr=subprocess.STDOUT, env=env,
            start_new_session=True)
        try:
            returncode = victim.wait(timeout=180)
        finally:
            try:  # reap any orphaned pool workers left by the kill
                os.killpg(victim.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    output = out_path.read_text()
    assert returncode == -signal.SIGKILL, \
        f"victim survived: rc={returncode}\n{output}"
    assert "COMPLETED" not in output  # it really died mid-job
    assert os.path.exists(os.path.join(root, JOURNAL_NAME))

    expected = run_cold(backend)
    with make_engine(backend, root, recover_from=root) as ctx:
        pairs = ctx.range(0, 240).map(lambda x: (x % 7, x))
        totals = pairs.reduce_by_key(lambda a, b: a + b)
        final = totals.map(lambda kv: (kv[0] % 3, kv[1])).reduce_by_key(
            lambda a, b: a + b)
        resumed = sorted(final.collect())
        summary = ctx.metrics.summary()
    assert resumed == expected
    assert summary["stages_recovered"] > 0


# -- blacklist cooldown rehabilitation (fake clock) ----------------------------


def test_blacklist_cooldown_rehabilitates_with_clean_ledger():
    now = [1000.0]
    tracker = NodeHealthTracker(failure_threshold=2,
                                clock=lambda: now[0],
                                blacklist_cooldown_s=30.0)
    assert not tracker.record_failure("w1")
    assert tracker.record_failure("w1")
    assert tracker.is_blacklisted("w1")

    now[0] += 29.9
    assert tracker.is_blacklisted("w1")  # sentence not yet served
    now[0] += 0.2
    assert not tracker.is_blacklisted("w1")
    assert tracker.blacklisted == set()

    # rehabilitation wiped the strike ledger: one fresh failure is not
    # enough to re-convict...
    assert not tracker.record_failure("w1")
    assert not tracker.is_blacklisted("w1")
    # ...but a full new streak earns a new sentence
    assert tracker.record_failure("w1")
    assert tracker.is_blacklisted("w1")


def test_blacklist_without_cooldown_is_permanent():
    now = [0.0]
    tracker = NodeHealthTracker(failure_threshold=1, clock=lambda: now[0])
    assert tracker.record_failure("w1")
    now[0] += 1e9
    assert tracker.is_blacklisted("w1")
    assert tracker.blacklisted == {"w1"}


def test_blacklist_cooldown_releases_each_worker_on_its_own_schedule():
    now = [0.0]
    tracker = NodeHealthTracker(failure_threshold=1,
                                clock=lambda: now[0],
                                blacklist_cooldown_s=10.0)
    tracker.record_failure("early")
    now[0] = 5.0
    tracker.record_failure("late")
    now[0] = 10.0
    assert not tracker.is_blacklisted("early")
    assert tracker.is_blacklisted("late")
    now[0] = 15.0
    assert tracker.blacklisted == set()


# -- shuffle server: bind retry and graceful drain -----------------------------


def _occupy_port():
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    return blocker, blocker.getsockname()[1]


def test_shuffle_server_bind_exhaustion_raises_address_in_use(tmp_path):
    blocker, port = _occupy_port()
    try:
        with pytest.raises(AddressInUseError):
            ShuffleServer(str(tmp_path), port=port,
                          bind_policy=RetryPolicy(max_retries=0))
    finally:
        blocker.close()


def test_shuffle_server_bind_retries_until_port_frees(tmp_path):
    blocker, port = _occupy_port()
    releaser = threading.Timer(0.15, blocker.close)
    releaser.start()
    try:
        server = ShuffleServer(
            str(tmp_path), port=port,
            bind_policy=RetryPolicy(max_retries=20, backoff_s=0.05,
                                    multiplier=1.0, max_backoff_s=0.05,
                                    jitter=0.0))
    finally:
        releaser.join()
        blocker.close()
    try:
        assert server.address[1] == port
    finally:
        server.stop()


def test_shuffle_server_stop_drains_in_flight_requests(tmp_path):
    records = [(k, k * k) for k in range(32)]
    length = _write_frames(str(tmp_path / "span.data"), records)
    server = ShuffleServer(str(tmp_path), delay_s=0.3)
    client = ShuffleFetchClient(server.address)
    fetched = []

    def fetch():
        fetched.append(client.fetch_records("span.data", 0, length))

    worker = threading.Thread(target=fetch)
    worker.start()
    time.sleep(0.1)  # let the request reach the server's delay
    server.stop()  # must block until the in-flight response is written
    worker.join(timeout=10.0)
    assert fetched == [records]
    server.stop()  # idempotent


# -- retry policy edges --------------------------------------------------------


def test_retry_policy_zero_retries_is_a_single_attempt():
    calls = []
    policy = RetryPolicy(max_retries=0, backoff_s=1.0)

    def always_fails(attempt):
        calls.append(attempt)
        raise OSError("nope")

    with pytest.raises(OSError):
        policy.run(always_fails, key="k", retry_on=(OSError,),
                   on_retry=lambda n, e: pytest.fail("no retry budget"),
                   sleep=lambda s: pytest.fail("must not sleep"))
    assert calls == [0]


def test_retry_policy_delay_saturates_at_cap():
    policy = RetryPolicy(max_retries=8, backoff_s=0.1, multiplier=10.0,
                         max_backoff_s=0.25, jitter=0.0)
    delays = [policy.delay_s(n, "k") for n in range(4)]
    assert delays == [0.1, 0.25, 0.25, 0.25]


def test_retry_policy_jitter_is_deterministic_across_instances():
    twin_a = RetryPolicy(backoff_s=0.1, jitter=0.5, seed=42)
    twin_b = RetryPolicy(backoff_s=0.1, jitter=0.5, seed=42)
    other = RetryPolicy(backoff_s=0.1, jitter=0.5, seed=43)
    schedule_a = [twin_a.delay_s(n, "span") for n in range(6)]
    schedule_b = [twin_b.delay_s(n, "span") for n in range(6)]
    schedule_c = [other.delay_s(n, "span") for n in range(6)]
    assert schedule_a == schedule_b  # same seed: byte-identical schedule
    assert schedule_a != schedule_c  # different seed: decorrelated


# -- heartbeat file cleanup ----------------------------------------------------


@needs_closures
def test_heartbeat_files_removed_after_stop(tmp_path):
    ctx = make_engine("process", tmp_path / "ckpt",
                      heartbeat_interval_s=0.05)
    try:
        assert sorted(ctx.range(0, 16).map(lambda x: x + 1).collect()) == \
            list(range(1, 17))
        beat_dir = ctx._transport.heartbeat_dir()
        deadline = time.time() + 10.0
        while not os.listdir(beat_dir) and time.time() < deadline:
            time.sleep(0.05)
        assert os.listdir(beat_dir), "workers never wrote a beat file"
    finally:
        ctx.stop()
    # stop() swept the heartbeat files even under a durable transport
    # root (which otherwise survives for recover_from= resumes)
    assert not os.path.exists(beat_dir)
    assert os.path.exists(tmp_path / "ckpt" / JOURNAL_NAME)
