"""Scheduler (stages, caching, shuffle reuse) and executor (retries, faults)."""

from __future__ import annotations

import pytest

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.errors import EngineError, TaskError


class TestStages:
    def test_narrow_job_has_single_stage(self, engine):
        engine.range(20, num_partitions=4).map(lambda x: x + 1).count()
        job = engine.metrics.jobs[-1]
        assert job.num_stages == 1
        assert job.num_tasks == 4

    def test_shuffle_job_has_map_and_result_stages(self, engine):
        engine.range(20, num_partitions=4).map(lambda x: (x % 2, x)) \
            .reduce_by_key(lambda a, b: a + b).collect()
        job = engine.metrics.jobs[-1]
        assert job.num_stages == 2
        shuffle_stages = [s for s in job.stages if s.is_shuffle_map]
        assert len(shuffle_stages) == 1
        assert shuffle_stages[0].num_tasks == 4

    def test_join_runs_two_shuffle_stages(self):
        # pin the shuffle-cogroup strategy: a tiny side would otherwise be
        # broadcast (see test_broadcast_join.py for that path)
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1,
                              broadcast_threshold_bytes=0)
        with EngineContext(config) as engine:
            left = engine.parallelize([(1, "a")], 2)
            right = engine.parallelize([(1, "b")], 2)
            left.join(right).collect()
            job = engine.metrics.jobs[-1]
            assert sum(1 for s in job.stages if s.is_shuffle_map) == 2

    def test_small_join_broadcasts_by_default(self, engine):
        left = engine.parallelize([(1, "a")], 2)
        right = engine.parallelize([(1, "b")], 2)
        assert left.join(right).collect() == [(1, ("a", "b"))]
        job = engine.metrics.jobs[-1]
        assert sum(1 for s in job.stages if s.is_shuffle_map) == 0

    def test_shuffle_output_reused_across_jobs(self, engine):
        reduced = engine.range(40, num_partitions=4).map(lambda x: (x % 4, x)) \
            .reduce_by_key(lambda a, b: a + b)
        reduced.collect()
        first_job_stages = engine.metrics.jobs[-1].num_stages
        reduced.count()
        second_job_stages = engine.metrics.jobs[-1].num_stages
        assert first_job_stages == 2
        assert second_job_stages == 1  # the shuffle output is still available

    def test_explain_mentions_every_lineage_node(self, engine):
        ds = engine.range(10, num_partitions=2).map(lambda x: (x, 1)) \
            .reduce_by_key(lambda a, b: a + b)
        plan = engine.explain(ds)
        assert "combine_by_key" in plan
        assert "parallelize" in plan
        assert "(shuffle)" in plan

    def test_run_job_on_subset_of_partitions(self, engine):
        ds = engine.range(40, num_partitions=4)
        results = engine.run_job(ds, list, partitions=[1])
        assert results == [list(range(10, 20))]


class TestCaching:
    def test_cached_dataset_served_from_store(self, engine):
        ds = engine.range(50, num_partitions=2).map(lambda x: x * 2).cache()
        ds.count()
        assert engine.block_store.stats()["blocks"] == 2
        ds.count()
        job = engine.metrics.jobs[-1]
        assert job.cache_hits == 2

    def test_unpersist_drops_blocks(self, engine):
        ds = engine.range(10, num_partitions=2).cache()
        ds.count()
        ds.unpersist()
        assert engine.block_store.stats()["blocks"] == 0
        assert not ds.is_cached

    def test_cache_avoids_upstream_shuffle_recomputation(self, engine):
        reduced = (engine.range(30, num_partitions=3)
                   .map(lambda x: (x % 3, x))
                   .reduce_by_key(lambda a, b: a + b)
                   .cache())
        assert reduced.count() == 3
        # downstream job over the cached dataset: no new shuffle stage needed
        downstream = reduced.map(lambda kv: kv[1])
        downstream.sum()
        assert engine.metrics.jobs[-1].num_stages == 1

    def test_cache_results_identical_to_uncached(self, engine):
        base = engine.range(100, num_partitions=4).map(lambda x: x * 3)
        expected = base.collect()
        cached = base.cache()
        assert cached.collect() == expected
        assert cached.collect() == expected


class TestMetricsCollection:
    def test_records_read_counted(self, engine):
        engine.range(100, num_partitions=4).count()
        job = engine.metrics.jobs[-1]
        assert job.records_read == 100

    def test_shuffle_bytes_counted(self, engine):
        engine.range(100, num_partitions=4).map(lambda x: (x, x)).group_by_key().collect()
        job = engine.metrics.jobs[-1]
        assert job.shuffle_bytes > 0

    def test_job_descriptions_present(self, engine):
        engine.range(10, num_partitions=2).count()
        assert "count" in engine.metrics.jobs[-1].description

    def test_metrics_summary_aggregates_jobs(self, engine):
        engine.range(10, num_partitions=2).count()
        engine.range(10, num_partitions=2).sum()
        summary = engine.metrics.summary()
        assert summary["num_jobs"] == 2
        assert summary["records_read"] == 20

    def test_metrics_reset(self, engine):
        engine.range(10, num_partitions=2).count()
        engine.metrics.reset()
        assert engine.metrics.jobs == []


class TestFaultInjectionAndRetries:
    def test_injected_failures_are_retried_and_job_succeeds(self):
        config = EngineConfig(num_workers=2, default_parallelism=4,
                              failure_rate=0.3, max_task_retries=6, seed=3)
        with EngineContext(config) as ctx:
            assert ctx.parallelize(range(200), 8).count() == 200
            assert ctx.metrics.jobs[-1].num_failed_attempts > 0

    def test_zero_retries_with_high_failure_rate_raises(self):
        config = EngineConfig(num_workers=1, default_parallelism=4,
                              failure_rate=0.95, max_task_retries=0, seed=1)
        with EngineContext(config) as ctx:
            with pytest.raises(TaskError):
                ctx.parallelize(range(100), 8).count()

    def test_user_exception_is_wrapped_in_task_error(self, engine):
        def boom(x):
            raise ValueError("bad record")
        with pytest.raises(TaskError) as excinfo:
            engine.range(5, num_partitions=1).map(boom).collect()
        assert "bad record" in str(excinfo.value)

    def test_failed_attempts_recorded_in_stage_metrics(self, engine):
        def sometimes(x):
            if x == 3:
                raise RuntimeError("poison record")
            return x
        with pytest.raises(TaskError):
            engine.parallelize(range(5), 1).map(sometimes).collect()
        job = engine.metrics.jobs[-1]
        assert job.num_failed_attempts == engine.config.max_task_retries + 1


class TestContextLifecycle:
    def test_stopped_context_rejects_new_work(self):
        ctx = EngineContext(EngineConfig(num_workers=1))
        ctx.stop()
        assert not ctx.is_active
        with pytest.raises(EngineError):
            ctx.parallelize([1, 2, 3])

    def test_context_manager_stops_on_exit(self):
        with EngineContext(EngineConfig(num_workers=1)) as ctx:
            ctx.range(3).count()
        assert not ctx.is_active

    def test_stop_is_idempotent(self):
        ctx = EngineContext(EngineConfig(num_workers=1))
        ctx.stop()
        ctx.stop()
        assert not ctx.is_active

    def test_text_file_reads_lines(self, tmp_path, engine):
        path = tmp_path / "data.txt"
        path.write_text("alpha\nbeta\ngamma\n", encoding="utf-8")
        assert engine.text_file(str(path)).collect() == ["alpha", "beta", "gamma"]

    def test_text_file_missing_raises(self, engine):
        from repro.errors import SourceError
        with pytest.raises(SourceError):
            engine.text_file("/nonexistent/file.txt")

    def test_single_worker_executes_sequentially(self, sequential_engine):
        order = []
        sequential_engine.range(6, num_partitions=3).map_partitions_with_index(
            lambda index, it: (order.append(index), list(it))[1]).collect()
        assert order == sorted(order)
