"""Logical-plan IR and rule-based optimizer: plan shape and result parity.

One test class per rewrite rule asserts the *shape* of the optimized plan
(fusion count, shuffle count, combine insertion, pruning) and that the
optimized pipeline returns exactly what the unoptimized one does; a
property-style section runs generated pipelines under every rule set and
compares results with an optimizer-disabled engine.
"""

from __future__ import annotations

import pytest

from repro.config import KNOWN_OPTIMIZER_RULES, EngineConfig
from repro.data.schemas import Field, Schema
from repro.data.sources import InMemorySource
from repro.engine import EngineContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.plan import (AggregateNode, FusedNode, PhysicalScanNode,
                               ProjectedScanNode, ProjectNode,
                               RepartitionNode, count_nodes, count_shuffles)
from repro.errors import ConfigurationError


def make_engine(*rules: str, workers: int = 2, **overrides) -> EngineContext:
    return EngineContext(EngineConfig(num_workers=workers,
                                      default_parallelism=4, seed=1,
                                      optimizer_rules=tuple(rules),
                                      **overrides))


def optimized_plan(engine, dataset):
    return engine.optimizer.optimize(dataset.plan)


@pytest.fixture()
def plain_engine():
    ctx = make_engine()  # optimizer fully disabled
    yield ctx
    ctx.stop()


# ---------------------------------------------------------------------------
# Plan recording
# ---------------------------------------------------------------------------


class TestPlanRecording:
    def test_transformations_record_logical_nodes(self, engine):
        ds = (engine.range(10, num_partitions=2)
              .map(lambda x: (x % 2, x))
              .filter(lambda kv: kv[1] > 2)
              .reduce_by_key(lambda a, b: a + b))
        assert ds.plan is not None
        ops = []

        def walk(node):
            ops.append(node.op)
            for child in node.children:
                walk(child)

        walk(ds.plan)
        assert ops == ["aggregate", "filter", "map", "source"]

    def test_join_records_join_node(self, engine):
        left = engine.parallelize([(1, "a")], 2)
        right = engine.parallelize([(1, "b")], 2)
        joined = left.join(right)
        assert joined.plan.op == "join"
        assert joined.plan.child.op == "cogroup"

    def test_explain_shows_three_distinct_sections(self, engine):
        ds = (engine.range(100, num_partitions=4)
              .map(lambda x: (x % 5, x))
              .filter(lambda kv: kv[1] % 2 == 0)
              .reduce_by_key(lambda a, b: a + b))
        text = ds.explain()
        assert "== Logical Plan ==" in text
        assert "== Optimized Plan ==" in text
        assert "== Physical Plan ==" in text
        logical, rest = text.split("== Optimized Plan ==")
        optimized, physical = rest.split("== Physical Plan ==")
        # the optimizer changed the plan, so all three renderings differ
        assert "map_side_combine" in optimized and "map_side_combine" not in logical
        assert "(shuffle)" in physical and "(shuffle)" not in optimized


# ---------------------------------------------------------------------------
# Rule: fuse_narrow
# ---------------------------------------------------------------------------


class TestFuseNarrow:
    def test_narrow_chain_fuses_into_one_operator(self):
        with make_engine("fuse_narrow") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: x + 1)
                  .filter(lambda x: x % 2 == 0)
                  .map(lambda x: x * 10))
            result = optimized_plan(ctx, ds)
            fused = [n for n in iter_nodes(result.plan) if isinstance(n, FusedNode)]
            assert len(fused) == 1
            assert [s.op for s in fused[0].stages] == ["map", "filter", "map"]
            assert ds.collect() == [(x + 1) * 10 for x in range(100) if (x + 1) % 2 == 0]

    def test_single_narrow_op_not_rewritten(self):
        with make_engine("fuse_narrow") as ctx:
            ds = ctx.range(10, num_partitions=2).map(lambda x: x + 1)
            result = optimized_plan(ctx, ds)
            assert not result.changed
            # unchanged plans execute the exact dataset the API built
            assert ctx._executable_for(ds) is ds

    def test_cached_dataset_is_a_fusion_barrier(self):
        with make_engine("fuse_narrow") as ctx:
            mid = ctx.range(10, num_partitions=2).map(lambda x: x + 1).cache()
            top = mid.map(lambda x: x * 2)
            result = optimized_plan(ctx, top)
            assert not any(isinstance(n, FusedNode) for n in iter_nodes(result.plan))


# ---------------------------------------------------------------------------
# Rule: pushdown
# ---------------------------------------------------------------------------


class TestPushdown:
    def test_filter_moves_below_repartition(self):
        with make_engine("pushdown") as ctx:
            ds = (ctx.range(100, num_partitions=2)
                  .repartition(8)
                  .filter(lambda x: x < 10))
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "repartition"
            assert result.plan.child.op == "filter"
            assert sorted(ds.collect()) == list(range(10))

    def test_filter_moves_below_sort(self):
        with make_engine("pushdown") as ctx:
            ds = (ctx.parallelize([5, 3, 8, 1, 9, 2, 7], 3)
                  .sort_by(lambda x: x)
                  .filter(lambda x: x % 2 == 1))
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "sort"
            assert result.plan.child.op == "filter"
            assert ds.collect() == [1, 3, 5, 7, 9]

    def test_pushdown_reduces_shuffle_bytes(self):
        def pipeline(ctx):
            return (ctx.range(2000, num_partitions=4)
                    .repartition(8)
                    .filter(lambda x: x % 100 == 0))

        with make_engine("pushdown") as ctx:
            optimized = sorted(pipeline(ctx).collect())
            optimized_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        with make_engine() as ctx:
            plain = sorted(pipeline(ctx).collect())
            plain_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        assert optimized == plain
        assert optimized_bytes < plain_bytes / 10

    def test_filter_does_not_cross_aggregations(self):
        with make_engine("pushdown") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: (x % 3, x))
                  .reduce_by_key(lambda a, b: a + b)
                  .filter(lambda kv: kv[1] > 100))
            result = optimized_plan(ctx, ds)
            assert not result.changed


# ---------------------------------------------------------------------------
# Rule: pushdown (projections)
# ---------------------------------------------------------------------------


EVENT_SCHEMA = Schema(name="events",
                      fields=(Field("a", "int"), Field("b", "int"),
                              Field("c", "str")))

EVENT_ROWS = [{"a": i, "b": i * 2, "c": f"payload-{i:06d}-" * 4}
              for i in range(100)]


def schema_scan(ctx, partitions: int = 4):
    source = InMemorySource("events", EVENT_ROWS, schema=EVENT_SCHEMA)
    return ctx.from_source(source, num_partitions=partitions)


class TestProjectionPushdown:
    def test_project_folds_into_pruned_scan(self):
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).project(["a", "c"])
            result = optimized_plan(ctx, ds)
            assert isinstance(result.plan, ProjectedScanNode)
            assert result.plan.fields == ["a", "c"]
            assert ds.collect() == \
                [{"a": row["a"], "c": row["c"]} for row in EVENT_ROWS]

    def test_unknown_field_blocks_fold(self):
        # "z" is outside the schema; ``record.get`` semantics materialise it
        # as None, which a scan of schema columns alone could not reproduce.
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).project(["a", "z"])
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "project"
            assert ds.collect()[0] == {"a": 0, "z": None}

    def test_schemaless_source_not_folded(self):
        with make_engine("pushdown") as ctx:
            ds = ctx.parallelize(EVENT_ROWS, 4).project(["a"])
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "project"

    def test_project_sinks_below_round_robin_repartition(self):
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).repartition(8).project(["b"])
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "repartition"
            assert isinstance(result.plan.child, ProjectedScanNode)
            assert sorted(row["b"] for row in ds.collect()) == \
                sorted(row["b"] for row in EVENT_ROWS)

    def test_project_stays_above_hash_repartition(self):
        # Hash routing reads record content: dropping fields before the
        # shuffle could change which reducer a record lands on, so
        # key-preservation analysis refuses the swap.
        with make_engine("pushdown") as ctx:
            shuffled = RepartitionNode(schema_scan(ctx).plan,
                                       HashPartitioner(4))
            plan = ProjectNode(shuffled, ["a"])
            result = ctx.optimizer.optimize(plan)
            assert result.plan.op == "project"
            assert result.plan.child.op == "repartition"

    def test_project_sinks_below_sort_with_declared_keys(self):
        with make_engine("pushdown") as ctx:
            ds = (schema_scan(ctx)
                  .sort_by(lambda row: row["b"], key_fields=["b"])
                  .project(["b"]))
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "sort"
            assert isinstance(result.plan.child, ProjectedScanNode)
            assert ds.collect() == [{"b": row["b"]} for row in EVENT_ROWS]

    def test_project_stays_above_sort_with_opaque_key(self):
        with make_engine("pushdown") as ctx:
            ds = (schema_scan(ctx)
                  .sort_by(lambda row: row["b"])
                  .project(["b"]))
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "project"
            assert result.plan.child.op == "sort"

    def test_project_not_sunk_when_sort_keys_dropped(self):
        with make_engine("pushdown") as ctx:
            ds = (schema_scan(ctx)
                  .sort_by(lambda row: row["b"], key_fields=["b"])
                  .project(["a"]))
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "project"
            assert result.plan.child.op == "sort"

    def test_adjacent_projections_collapse(self):
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).project(["a", "b"]).project(["a"])
            result = optimized_plan(ctx, ds)
            assert isinstance(result.plan, ProjectedScanNode)
            assert result.plan.fields == ["a"]

    def test_widening_projections_keep_null_semantics(self):
        # The inner projection nulls "c"; collapsing project(["a","c"]) over
        # project(["a","b"]) would resurrect it.
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).project(["a", "b"]).project(["a", "c"])
            assert ds.collect()[1] == {"a": 1, "c": None}

    def test_cached_projection_not_rewritten(self):
        with make_engine("pushdown") as ctx:
            ds = schema_scan(ctx).project(["a"]).cache()
            result = optimized_plan(ctx, ds)
            assert result.plan.op == "project"

    def test_pruned_scans_share_one_physical_dataset(self):
        with make_engine("pushdown") as ctx:
            base = schema_scan(ctx)
            first = base.project(["a"])
            second = base.project(["a"])
            assert ctx._executable_for(first) is ctx._executable_for(second)

    def test_projection_pushdown_reduces_shuffle_bytes(self):
        def pipeline(ctx):
            return schema_scan(ctx).repartition(8).project(["a"])

        with make_engine("pushdown") as ctx:
            optimized = pipeline(ctx).collect()
            optimized_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        with make_engine() as ctx:
            plain = pipeline(ctx).collect()
            plain_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        assert optimized == plain
        assert optimized_bytes < plain_bytes / 2


# ---------------------------------------------------------------------------
# Rule: map_side_combine
# ---------------------------------------------------------------------------


class TestMapSideCombine:
    def test_combine_inserted_into_aggregations(self):
        with make_engine("map_side_combine") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: (x % 5, 1))
                  .reduce_by_key(lambda a, b: a + b))
            result = optimized_plan(ctx, ds)
            aggregates = [n for n in iter_nodes(result.plan)
                          if isinstance(n, AggregateNode)]
            assert len(aggregates) == 1
            assert aggregates[0].map_side_combine

    def test_combine_reduces_shuffle_bytes_with_identical_results(self):
        """Acceptance: reduce_by_key over a filter shuffles measurably less.

        Compression is disabled so the comparison measures record
        reduction: the uncombined stream's 2500 near-identical pairs
        compress far better than 40 combiners, and the measured codec
        ratio would otherwise flatter the unoptimized plan.
        """
        def pipeline(ctx):
            return (ctx.range(5000, num_partitions=4)
                    .filter(lambda x: x % 2 == 0)
                    .map(lambda x: (x % 10, 1))
                    .reduce_by_key(lambda a, b: a + b))

        with make_engine(*KNOWN_OPTIMIZER_RULES,
                         shuffle_compression=False) as ctx:
            optimized = sorted(pipeline(ctx).collect())
            optimized_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        with make_engine(shuffle_compression=False) as ctx:
            plain = sorted(pipeline(ctx).collect())
            plain_bytes = ctx.metrics.jobs[-1].shuffle_bytes
        assert optimized == plain
        # 2500 surviving records shrink to <= 10 keys x 4 map partitions
        assert optimized_bytes < plain_bytes / 5

    def test_group_by_key_is_not_combined(self):
        with make_engine("map_side_combine") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: (x % 5, x))
                  .group_by_key())
            assert not optimized_plan(ctx, ds).changed


# ---------------------------------------------------------------------------
# Rule: shuffle_elim
# ---------------------------------------------------------------------------


class TestShuffleElimination:
    def test_matching_partitioner_drops_second_shuffle(self):
        with make_engine("shuffle_elim") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: (x % 7, x))
                  .reduce_by_key(lambda a, b: a + b, 4)
                  .group_by_key(4))
            result = optimized_plan(ctx, ds)
            assert count_shuffles(ds.plan) == 2
            assert count_shuffles(result.plan) == 1
            expected = {k: [v] for k, v in
                        (make_collect(lambda c: (c.range(100, num_partitions=4)
                                                 .map(lambda x: (x % 7, x))
                                                 .reduce_by_key(lambda a, b: a + b, 4))))}
            assert {k: v for k, v in ds.collect()} == expected
            job = ctx.metrics.jobs[-1]
            assert sum(1 for s in job.stages if s.is_shuffle_map) == 1

    def test_mismatched_partition_count_keeps_shuffle(self):
        with make_engine("shuffle_elim") as ctx:
            ds = (ctx.range(100, num_partitions=4)
                  .map(lambda x: (x % 7, x))
                  .reduce_by_key(lambda a, b: a + b, 4)
                  .group_by_key(8))
            assert not optimized_plan(ctx, ds).changed

    def test_distinct_over_distinct_eliminated(self):
        with make_engine("shuffle_elim") as ctx:
            ds = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct(4).distinct(4)
            result = optimized_plan(ctx, ds)
            assert count_shuffles(result.plan) == 1
            assert sorted(ds.collect()) == [1, 2, 3]


# ---------------------------------------------------------------------------
# Rule: cache_prune
# ---------------------------------------------------------------------------


class TestCachePrune:
    def test_fully_cached_subtree_becomes_scan(self):
        with make_engine(*KNOWN_OPTIMIZER_RULES) as ctx:
            mid = (ctx.range(60, num_partitions=3)
                   .map(lambda x: (x % 3, x))
                   .reduce_by_key(lambda a, b: a + b)
                   .cache())
            mid.count()  # materialise the cache
            top = mid.map(lambda kv: kv[1])
            result = optimized_plan(ctx, top)
            assert any(isinstance(n, PhysicalScanNode)
                       for n in iter_nodes(result.plan))
            assert count_shuffles(result.plan) == 0
            top.sum()
            assert ctx.metrics.jobs[-1].num_stages == 1

    def test_uncached_subtree_not_pruned(self):
        with make_engine("cache_prune") as ctx:
            ds = ctx.range(10, num_partitions=2).map(lambda x: x + 1)
            assert not optimized_plan(ctx, ds).changed

    def test_zip_with_index_pinned_against_replanning(self):
        """Re-planning after cache() must not shift records under the baked
        offsets: indices stay unique and dense."""
        with make_engine(*KNOWN_OPTIMIZER_RULES) as ctx:
            filtered = (ctx.range(100, num_partitions=4)
                        .repartition(4)
                        .filter(lambda x: x < 25))
            zipped = filtered.zip_with_index()
            filtered.cache()  # bumps the epoch; pushdown now blocked
            pairs = zipped.collect()
            assert sorted(r for r, _ in pairs) == list(range(25))
            assert sorted(i for _, i in pairs) == list(range(25))

    def test_caching_after_planning_invalidates_memoised_executables(self):
        """cache() must re-plan datasets optimized before the flag was set."""
        calls = []

        def trace(x):
            calls.append(x)
            return x * 2

        with make_engine(*KNOWN_OPTIMIZER_RULES) as ctx:
            mapped = ctx.range(10, num_partitions=2).map(trace)
            result = mapped.filter(lambda x: x > 5)
            result.collect()          # memoises a fused executable
            first_calls = len(calls)
            mapped.cache()
            mapped.collect()          # materialises the cache
            mid_calls = len(calls)
            result.collect()          # must read the cache, not re-run trace
            assert first_calls == 10
            assert mid_calls == 20
            assert len(calls) == 20
            assert ctx.metrics.jobs[-1].cache_hits == 2


# ---------------------------------------------------------------------------
# Result parity: optimized and unoptimized plans agree on generated data
# ---------------------------------------------------------------------------


PIPELINES = {
    "fused-narrow": lambda ds: ds.map(lambda x: x * 3).filter(
        lambda x: x % 2 == 0).map(lambda x: x - 1),
    "aggregate": lambda ds: ds.map(lambda x: (x % 13, x)).reduce_by_key(
        lambda a, b: a + b),
    "aggregate-chain": lambda ds: ds.map(lambda x: (x % 5, x)).reduce_by_key(
        lambda a, b: a + b, 4).group_by_key(4).map_values(sorted),
    "repartition-filter": lambda ds: ds.repartition(6).filter(
        lambda x: x % 3 == 0),
    "sort-filter": lambda ds: ds.sort_by(lambda x: -x).filter(
        lambda x: x % 2 == 1),
    "distinct-twice": lambda ds: ds.map(lambda x: x % 17).distinct(4).distinct(4),
    "mixed": lambda ds: ds.filter(lambda x: x % 2 == 0).map(
        lambda x: (x % 7, 1)).reduce_by_key(lambda a, b: a + b, 3),
}


@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
@pytest.mark.parametrize("seed", [0, 1])
def test_property_optimized_matches_unoptimized(pipeline_name, seed):
    import random

    rng = random.Random(seed)
    data = [rng.randrange(200) for _ in range(rng.randrange(1, 400))]
    build = PIPELINES[pipeline_name]
    with make_engine(*KNOWN_OPTIMIZER_RULES) as ctx:
        optimized = build(ctx.parallelize(data, 4)).collect()
    with make_engine() as ctx:
        plain = build(ctx.parallelize(data, 4)).collect()
    assert sorted(map(repr, optimized)) == sorted(map(repr, plain))


@pytest.mark.parametrize("rule", sorted(KNOWN_OPTIMIZER_RULES))
def test_property_each_rule_alone_preserves_results(rule):
    import random

    rng = random.Random(hash(rule) & 0xFFFF)
    data = [rng.randrange(100) for _ in range(300)]
    for build in PIPELINES.values():
        with make_engine(rule) as ctx:
            with_rule = build(ctx.parallelize(data, 4)).collect()
        with make_engine() as ctx:
            without = build(ctx.parallelize(data, 4)).collect()
        assert sorted(map(repr, with_rule)) == sorted(map(repr, without))


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------


class TestSkewPricedCost:
    """The cost model prices the predicted max reduce partition, so the
    straggler — not the average — drives join strategy selection."""

    LEFT_ROWS = 20_000
    RIGHT = [(k % 51, ("dim", k)) for k in range(12_000)]

    @staticmethod
    def _left(hot: bool):
        if hot:
            return [(0 if i % 10 < 8 else i % 50 + 1, i) for i in range(20_000)]
        return [(i % 50, i) for i in range(20_000)]

    def _strategy(self, hot: bool) -> str:
        # threshold sized between the two inputs: only the right (build)
        # side is broadcast-eligible, and a right_outer join's preserved
        # build side forces the cost comparison against the shuffle cogroup
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1,
                              broadcast_threshold_bytes=60_000,
                              adaptive_enabled=False)
        with EngineContext(config) as ctx:
            left = ctx.parallelize(self._left(hot), 4)
            right = ctx.parallelize(self.RIGHT, 2)
            join = left.right_outer_join(right, 4)
            result = ctx.optimizer.optimize(join.plan)
            return "broadcast" if "broadcast_join" in result.applied \
                else "shuffle"

    def test_hot_key_join_flips_to_broadcast(self):
        assert self._strategy(hot=False) == "shuffle"
        assert self._strategy(hot=True) == "broadcast"

    def test_flip_is_driven_by_the_straggler_surcharge(self, monkeypatch):
        from repro.engine import optimizer as optimizer_module
        monkeypatch.setattr(optimizer_module, "SKEW_STRAGGLER_WEIGHT", 0.0)
        assert self._strategy(hot=True) == "shuffle"

    def test_surcharge_scales_with_the_hot_key(self):
        from repro.engine.optimizer import skew_surcharge
        config = EngineConfig(num_workers=2, default_parallelism=4, seed=1)
        with EngineContext(config) as ctx:
            uniform = ctx.parallelize(self._left(hot=False), 4).group_by_key(4)
            hot = ctx.parallelize(self._left(hot=True), 4).group_by_key(4)
            for ds in (uniform, hot):
                ctx.optimizer.estimator.annotate(ds.plan)
            # near-uniform keys price a near-zero surcharge; the 80%-hot
            # key pays for the straggler partition it predicts
            assert skew_surcharge(hot.plan) > \
                10 * skew_surcharge(uniform.plan)
            input_bytes = hot.plan.children[0].stats.size_bytes
            assert skew_surcharge(hot.plan) > input_bytes

    def test_predicted_max_partition_share(self):
        from repro.engine.stats import KeyDistribution
        uniform = KeyDistribution(distinct_keys=100, top_shares=((7, 0.01),),
                                  sampled_records=100)
        skewed = KeyDistribution(distinct_keys=10, top_shares=((0, 0.8),),
                                 sampled_records=100)
        assert uniform.predicted_max_partition_share(4) == pytest.approx(
            0.01 + 0.99 * 0.25)
        assert skewed.predicted_max_partition_share(4) == pytest.approx(
            0.8 + 0.2 * 0.25)
        assert skewed.predicted_max_partition_share(1) == 1.0


class TestOptimizerConfig:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(optimizer_rules=("definitely_not_a_rule",))

    def test_rules_normalised_to_tuple(self):
        config = EngineConfig(optimizer_rules=["fuse_narrow"])
        assert config.optimizer_rules == ("fuse_narrow",)

    def test_disabled_optimizer_runs_api_dataset(self, plain_engine):
        ds = (plain_engine.range(50, num_partitions=2)
              .map(lambda x: (x % 3, 1)).reduce_by_key(lambda a, b: a + b))
        assert plain_engine._executable_for(ds) is ds
        assert dict(ds.collect()) == {0: 17, 1: 17, 2: 16}


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def iter_nodes(node):
    yield node
    for child in node.children:
        yield from iter_nodes(child)


def make_collect(build):
    with make_engine() as ctx:
        return build(ctx).collect()
