"""Memory-bounded execution: spill-to-disk shuffle and external merge.

The contract under test everywhere: with ``shuffle_memory_bytes`` capped far
below the shuffle volume, every wide operator returns *identical* results
(same records, same order) and identical metrics — except the spill counters
— as the unbounded resident run, while actually spilling; and no spill file
survives ``EngineContext.stop()`` or a failed job.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig
from repro.engine.context import EngineContext
from repro.engine.memory import (MemoryManager, SpillRun, dump_frames,
                                 iter_frames, load_frames)
from repro.engine.shuffle import ShuffleManager
from repro.errors import TaskError

#: Far below the shuffle volume of every pipeline below — even the heavily
#: map-side-combined ones — so the bucket spill path and the reduce-side
#: external merge both engage for all twelve wide operators.
TINY_CAP = 128


def capped_engine(batch_size: int = 1024, cap: int = TINY_CAP,
                  **overrides) -> EngineContext:
    """An engine whose shuffle memory is capped far below the data volume."""
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "shuffle_memory_bytes": cap}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


def resident_engine(batch_size: int = 1024, **overrides) -> EngineContext:
    """The same engine with the default unbounded (fully resident) shuffle."""
    options = {"num_workers": 2, "default_parallelism": 4, "seed": 1,
               "batch_size": batch_size, "shuffle_memory_bytes": 0}
    options.update(overrides)
    return EngineContext(EngineConfig(**options))


DATA = [(0 if i % 20 < 9 else i % 13, i) for i in range(800)]

PIPELINES = {
    "group_by_key": lambda ds, other: ds.group_by_key(4),
    "reduce_by_key": lambda ds, other: ds.reduce_by_key(lambda a, b: a + b, 4),
    "combine_by_key": lambda ds, other: ds.combine_by_key(
        lambda v: [v], lambda acc, v: acc + [v], lambda a, b: a + b, 4),
    "distinct": lambda ds, other: ds.distinct(4),
    "sort_by": lambda ds, other: ds.sort_by(lambda pair: pair[0], True, 4),
    "repartition": lambda ds, other: ds.repartition(4),
    "join": lambda ds, other: ds.join(other, 4),
    "left_outer_join": lambda ds, other: ds.left_outer_join(other, 4),
    "right_outer_join": lambda ds, other: ds.right_outer_join(other, 4),
    "full_outer_join": lambda ds, other: ds.full_outer_join(other, 4),
    "subtract_by_key": lambda ds, other: ds.subtract_by_key(other, 4),
    "cogroup": lambda ds, other: ds.cogroup(other, 4),
}

OTHER_SIDE = [(k, f"dim-{k}") for k in range(0, 26, 2)]

#: Metric keys that legitimately differ between bounded and resident runs.
_VOLATILE_KEYS = ("wall_clock_s", "total_task_time_s", "spills",
                  "spill_bytes", "peak_shuffle_bytes")


def run_pipeline(make_engine, pipeline_name: str, data, batch_size: int):
    """Run one pipeline twice (shuffle + reuse); return results and metrics."""
    build = PIPELINES[pipeline_name]
    with make_engine(batch_size=batch_size,
                     broadcast_threshold_bytes=0) as ctx:
        ds = build(ctx.parallelize(data, 4), ctx.parallelize(OTHER_SIDE, 2))
        first = ds.collect()
        second = ds.collect()  # shuffle output (spilled or not) is reused
        summary = ctx.metrics.summary()
        read_bytes = sum(stage.shuffle_bytes_read
                         for job in ctx.metrics.jobs for stage in job.stages)
        comparable = {key: value for key, value in summary.items()
                      if key not in _VOLATILE_KEYS}
        comparable["shuffle_bytes_read"] = read_bytes
        return first, second, comparable, summary["spills"]


@pytest.mark.parametrize("batch_size", [0, 1, 1024])
@pytest.mark.parametrize("pipeline_name", sorted(PIPELINES))
def test_capped_matches_resident_exactly(pipeline_name, batch_size):
    """Capped and resident runs agree record-for-record and metric-for-metric."""
    capped_first, capped_second, capped_metrics, spills = run_pipeline(
        capped_engine, pipeline_name, DATA, batch_size)
    plain_first, plain_second, plain_metrics, none = run_pipeline(
        resident_engine, pipeline_name, DATA, batch_size)
    assert capped_first == plain_first
    assert capped_second == plain_second
    assert capped_metrics == plain_metrics
    assert spills > 0, "the tiny cap must actually force spilling"
    assert none == 0, "the unbounded engine must never spill"


@pytest.mark.parametrize("pipeline_name", ["group_by_key", "sort_by", "join"])
def test_capped_parity_with_skew_splitting(pipeline_name):
    """Spilled shuffles still serve skew-split sub-partition reads exactly."""
    overrides = {"skew_split_factor": 4, "skew_min_partition_bytes": 1}

    def capped(batch_size, **extra):
        return capped_engine(batch_size, **dict(overrides, **extra))

    def plain(batch_size, **extra):
        return resident_engine(batch_size, **dict(overrides, **extra))

    capped_first, capped_second, capped_metrics, spills = run_pipeline(
        capped, pipeline_name, DATA, 1024)
    plain_first, plain_second, plain_metrics, _ = run_pipeline(
        plain, pipeline_name, DATA, 1024)
    assert capped_first == plain_first
    assert capped_second == plain_second
    assert capped_metrics == plain_metrics
    assert spills > 0


def test_uncombined_aggregation_reduces_resident_but_correct():
    """Without slice semantics the external merge must stay out of the way."""
    rules = tuple(rule for rule in EngineConfig().optimizer_rules
                  if rule != "map_side_combine")
    capped_first, _, _, _ = run_pipeline(
        lambda batch_size, **kw: capped_engine(
            batch_size, optimizer_rules=rules, **kw),
        "reduce_by_key", DATA, 1024)
    plain_first, _, _, _ = run_pipeline(
        lambda batch_size, **kw: resident_engine(
            batch_size, optimizer_rules=rules, **kw),
        "reduce_by_key", DATA, 1024)
    assert capped_first == plain_first


def test_peak_residency_is_tracked_and_bounded():
    """A cap far below the shuffle volume slashes the tracked residency.

    The cap is derived from the measured resident peak; the capped run may
    overshoot the cap by in-flight map outputs and bounded merge partials
    (~1.5x the cap), but must land far below the resident high-water mark.
    """
    data = [(i % 29, "x" * 50) for i in range(20_000)]

    def peak(make_engine):
        with make_engine() as ctx:
            ds = ctx.parallelize(data, 8).group_by_key(8)
            ds.collect()
            return (ctx.memory_manager.peak_bytes,
                    ctx.metrics.jobs[-1].peak_shuffle_bytes,
                    ctx.metrics.jobs[-1].spills)

    resident_peak, _, no_spills = peak(resident_engine)
    cap = resident_peak // 4
    capped_peak, capped_job_peak, spills = peak(
        lambda: capped_engine(cap=cap))
    assert spills > 0 and no_spills == 0
    assert capped_job_peak > 0
    assert capped_peak <= resident_peak * 0.6
    # the job-level metric observes the same residency the manager tracks
    assert capped_job_peak <= capped_peak


# -- spill-file lifecycle ------------------------------------------------------


def spill_files(ctx) -> list:
    root = ctx._spill_root
    if root is None or not os.path.isdir(root):
        return []
    return sorted(os.listdir(root))


def test_no_spill_files_survive_stop():
    ctx = capped_engine()
    ds = ctx.parallelize(DATA, 4).group_by_key(4)
    ds.collect()
    root = ctx._spill_root
    assert root is not None and os.path.isdir(root)
    assert any(name.startswith("shuffle-") for name in spill_files(ctx))
    ctx.stop()
    assert not os.path.isdir(root)


def test_merge_runs_are_deleted_after_each_job():
    with capped_engine() as ctx:
        ds = ctx.parallelize(DATA, 4).sort_by(lambda pair: pair[0], True, 4)
        ds.collect()
        assert ctx.metrics.summary()["spills"] > 0
        # the shuffle's bucket spill file may live on (the shuffle is
        # reusable); every reduce-side run file must be gone already
        assert not any(name.startswith("run-") for name in spill_files(ctx))


def test_failed_job_discards_partial_spill_files():
    def explode(pair):
        if pair[1] == 799:  # last record of the last map partition
            raise ValueError("boom")
        return pair

    ctx = capped_engine(max_task_retries=0, num_workers=1)
    try:
        ds = ctx.parallelize(DATA, 4).map(explode).group_by_key(4)
        with pytest.raises(TaskError):
            ds.collect()
        # the incomplete shuffle (and its spill file) was discarded
        assert not any(name.startswith("shuffle-") for name in spill_files(ctx))
        assert not any(name.startswith("run-") for name in spill_files(ctx))
        root = ctx._spill_root
    finally:
        ctx.stop()
    assert root is None or not os.path.isdir(root)


def test_shuffle_spill_file_removed_with_shuffle(tmp_path):
    memory = MemoryManager(64)
    manager = ShuffleManager(memory_manager=memory,
                             spill_dir=lambda: str(tmp_path))
    manager.register_shuffle(7, 2)
    manager.write_map_output(7, 0, {0: [(1, "a")] * 50, 1: [(2, "b")] * 50})
    manager.write_map_output(7, 1, {0: [(1, "c")] * 50})
    assert manager.spill_stats()[0] > 0
    assert any(name.startswith("shuffle-7") for name in os.listdir(tmp_path))
    manager.remove_shuffle(7)
    assert not os.listdir(tmp_path)
    assert memory.used_bytes == 0


def test_external_merge_failure_leaves_no_runs_or_reservation():
    """A reduce that raises mid-merge must delete its runs and release its
    memory reservation (regression: the tail reduce used to sit outside the
    cleanup handler)."""
    with capped_engine(optimizer_rules=(), max_task_retries=0) as ctx:
        ds = ctx.parallelize(DATA, 4).group_by_key(4)
        ds.collect()  # the shuffle completes; reduce reads will spill runs

        def exploding(records):
            raise ValueError("reduce boom")

        ds._slice_reduce = exploding
        with pytest.raises(TaskError):
            ds.collect()
        assert not any(name.startswith("run-") for name in spill_files(ctx))
        # only the shuffle buckets' reservation survives the failed job
        assert ctx.memory_manager.used_bytes == \
            ctx.shuffle_manager.resident_bytes()


def test_unpicklable_records_fall_back_to_resident_execution():
    """Unpicklable records disable spilling but never break the job."""
    class Unpicklable:
        def __init__(self, value):
            self.value = value

        def __reduce__(self):
            raise TypeError("refuses to pickle")

    data = [(i % 3, Unpicklable(i)) for i in range(300)]
    with capped_engine() as ctx:
        grouped = (ctx.parallelize(data, 4).group_by_key(4)
                   .map_values(len).collect())
        assert sorted(grouped) == [(0, 100), (1, 100), (2, 100)]
        assert not spill_files(ctx)  # nothing could be spilled


# -- ShuffleManager spill behaviour -------------------------------------------


@pytest.fixture()
def paired_managers(tmp_path):
    """A capped manager (spilling into tmp_path) and a resident twin."""
    capped = ShuffleManager(memory_manager=MemoryManager(128),
                            spill_dir=lambda: str(tmp_path))
    resident = ShuffleManager()
    buckets = {
        0: {0: [(0, i) for i in range(200)], 1: [(1, i) for i in range(10)]},
        1: {0: [(0, -i) for i in range(150)], 2: [(2, i) for i in range(30)]},
        2: {1: [(1, i * 7) for i in range(90)]},
    }
    for manager in (capped, resident):
        manager.register_shuffle(3, 3)
        for map_partition, output in buckets.items():
            manager.write_map_output(3, map_partition, output)
    yield capped, resident
    capped.clear()
    resident.clear()


def test_spilled_reads_match_resident_reads(paired_managers):
    capped, resident = paired_managers
    assert capped.spill_stats()[0] > 0
    assert capped.resident_bytes() <= 128
    for partition in range(3):
        assert capped.read_reduce_input(3, partition) == \
            resident.read_reduce_input(3, partition)
        for map_range in ((0, 1), (0, 2), (1, 3), (2, 3)):
            assert capped.read_reduce_input(3, partition, map_range) == \
                resident.read_reduce_input(3, partition, map_range)


def test_iter_reduce_input_streams_the_full_read(paired_managers):
    capped, resident = paired_managers
    for partition in range(3):
        streamed: list = []
        size = 0
        for bucket, bucket_size in capped.iter_reduce_input(3, partition):
            streamed.extend(bucket)
            size += bucket_size
        assert (streamed, size) == resident.read_reduce_input(3, partition)


def test_sample_records_identical_after_spilling(paired_managers):
    capped, resident = paired_managers
    for size in (5, 50, 10_000):
        assert capped.sample_records(3, size) == resident.sample_records(3, size)


def test_unpicklable_buckets_stay_resident(tmp_path):
    capped = ShuffleManager(memory_manager=MemoryManager(16),
                            spill_dir=lambda: str(tmp_path))
    capped.register_shuffle(1, 1)
    records = [(0, lambda: None)] * 40  # lambdas refuse to pickle
    capped.write_map_output(1, 0, {0: records})
    read, _ = capped.read_reduce_input(1, 0)
    assert len(read) == 40
    assert not os.listdir(tmp_path)
    capped.clear()


def test_overwritten_map_output_replaces_spilled_bucket(tmp_path):
    capped = ShuffleManager(memory_manager=MemoryManager(64),
                            spill_dir=lambda: str(tmp_path))
    capped.register_shuffle(1, 2)
    capped.write_map_output(1, 0, {0: [(0, i) for i in range(100)]})
    capped.write_map_output(1, 1, {0: [(9, 9)] * 80})  # forces 0's spill
    # a retried map task rewrites its buckets; the fresh copy must win
    capped.write_map_output(1, 0, {0: [("fresh", i) for i in range(5)]})
    records, _ = capped.read_reduce_input(1, 0)
    assert records[:5] == [("fresh", i) for i in range(5)]
    capped.clear()


# -- MemoryManager and spill-frame helpers ------------------------------------


class TestMemoryManager:
    def test_unbounded_by_default(self):
        manager = MemoryManager(0)
        assert not manager.bounded
        assert manager.task_run_budget(4) == 0

    def test_reservations_are_absolute_and_released(self):
        manager = MemoryManager(100)
        assert manager.reserve("a", 40) == 40
        assert manager.reserve("b", 30) == 70
        assert manager.reserve("a", 10) == 40  # replaced, not accumulated
        manager.release("b")
        assert manager.used_bytes == 10
        assert manager.peak_bytes == 70

    def test_reset_peak(self):
        manager = MemoryManager(100)
        manager.reserve("a", 80)
        manager.release("a")
        manager.reset_peak()
        assert manager.peak_bytes == 0

    def test_task_run_budget_splits_a_quarter_of_the_budget(self):
        manager = MemoryManager(1000)
        assert manager.task_run_budget(2) == 125
        assert manager.task_run_budget(1) == 250


class TestSpillFrames:
    def test_frames_round_trip(self, tmp_path):
        records = list(range(10_000))
        payload = dump_frames(records)
        path = tmp_path / "payload.bin"
        path.write_bytes(payload)
        assert load_frames(str(path), 0, len(payload)) == records
        frames = list(iter_frames(str(path), 0, len(payload)))
        assert len(frames) > 1  # actually framed, not one blob
        assert [r for frame in frames for r in frame] == records

    def test_spill_run_list_kind_streams(self, tmp_path):
        run = SpillRun.spill(str(tmp_path), [3, 1, 2])
        assert run.kind == "list"
        assert list(run.iter_records()) == [3, 1, 2]
        run.delete()
        assert not os.path.exists(run.path)
        run.delete()  # idempotent

    def test_spill_run_dict_kind_rebuilds(self, tmp_path):
        run = SpillRun.spill(str(tmp_path), {1: ["a"], 2: ["b", "c"]})
        assert run.kind == "dict"
        assert run.load_dict() == {1: ["a"], 2: ["b", "c"]}
        run.delete()


# -- property test: random workloads under a tiny cap --------------------------


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pairs=st.lists(
        st.tuples(st.sampled_from([0, 0, 0, 1, 2, 3]),
                  st.integers(min_value=-50, max_value=50)),
        min_size=0, max_size=250),
    batch_size=st.sampled_from([0, 1024]),
    pipeline_name=st.sampled_from(
        ["group_by_key", "reduce_by_key", "distinct", "sort_by", "join"]),
)
def test_property_capped_parity(pairs, batch_size, pipeline_name):
    capped_first, capped_second, capped_metrics, _ = run_pipeline(
        capped_engine, pipeline_name, pairs, batch_size)
    plain_first, plain_second, plain_metrics, _ = run_pipeline(
        resident_engine, pipeline_name, pairs, batch_size)
    assert capped_first == plain_first
    assert capped_second == plain_second
    assert capped_metrics == plain_metrics
