"""Shared fixtures of the test suite.

Expensive objects (engine contexts, compiled campaign runs, lab sessions) are
module- or session-scoped so the several hundred tests stay fast; anything a
test mutates gets its own function-scoped instance.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig, PlatformConfig
from repro.core.campaign import CampaignRunner
from repro.core.catalog import build_default_catalog
from repro.core.compiler import CampaignCompiler
from repro.data.generators import (ChurnDataGenerator, EnergyDataGenerator,
                                   PatientRecordGenerator,
                                   RetailTransactionGenerator, WebLogGenerator)
from repro.engine.context import EngineContext
from repro.platform.api import BDAaaSPlatform


@pytest.fixture()
def engine():
    """A fresh, small, deterministic engine context."""
    ctx = EngineContext(EngineConfig(num_workers=2, default_parallelism=4, seed=1))
    yield ctx
    ctx.stop()


@pytest.fixture()
def sequential_engine():
    """A single-worker engine for tests that need strict determinism."""
    ctx = EngineContext(EngineConfig(num_workers=1, default_parallelism=3, seed=1))
    yield ctx
    ctx.stop()


@pytest.fixture(scope="session")
def churn_records():
    """A small churn dataset reused across analytics tests."""
    return ChurnDataGenerator(seed=5).generate(1200)


@pytest.fixture(scope="session")
def retail_records():
    """A small retail basket dataset."""
    return RetailTransactionGenerator(seed=5).generate(800)


@pytest.fixture(scope="session")
def energy_records():
    """A small smart-meter dataset."""
    return EnergyDataGenerator(seed=5, num_meters=20).generate(1500)


@pytest.fixture(scope="session")
def patient_records():
    """A small hospital dataset."""
    return PatientRecordGenerator(seed=5).generate(1000)


@pytest.fixture(scope="session")
def weblog_records():
    """A small web log dataset."""
    return WebLogGenerator(seed=5).generate(1500)


@pytest.fixture(scope="session")
def default_catalog():
    """The default service catalogue (read-only)."""
    return build_default_catalog()


@pytest.fixture(scope="session")
def compiler(default_catalog):
    """A campaign compiler over the default catalogue."""
    return CampaignCompiler(default_catalog)


@pytest.fixture(scope="session")
def runner(default_catalog):
    """A campaign runner over the default catalogue."""
    return CampaignRunner(default_catalog)


@pytest.fixture()
def platform():
    """A fresh BDAaaS platform with small free-tier quotas for quota tests."""
    return BDAaaSPlatform(PlatformConfig(free_tier_max_jobs=10,
                                         free_tier_max_rows=50_000,
                                         free_tier_max_workers=4))


def small_churn_spec(num_records: int = 1500, **overrides):
    """A compact churn classification specification used by many tests."""
    spec = {
        "name": "test-churn",
        "purpose": "analytics",
        "policy": "open_data",
        "source": {"scenario": "churn", "num_records": num_records},
        "deployment": {"num_partitions": 2, "num_workers": 1},
        "goals": [
            {"id": "churn", "task": "classification",
             "params": {"label": "churned",
                        "features": ["tenure_months", "monthly_charges",
                                     "num_support_calls"],
                        "categorical_features": ["contract_type"]},
             "optimize_for": "cost",
             "objectives": [{"indicator": "accuracy", "target": 0.55}]},
        ],
    }
    spec.update(overrides)
    return spec


@pytest.fixture(scope="session")
def churn_spec():
    """The compact churn specification as a session fixture."""
    return small_churn_spec()


@pytest.fixture(scope="session")
def churn_run(compiler, runner, churn_spec):
    """One executed churn campaign run, shared by read-only tests."""
    campaign = compiler.compile(churn_spec)
    return runner.run(campaign, option_label="shared")
