"""Streaming vertical scenario: smart-meter anomaly detection in micro-batches.

The same declarative goal (flag anomalous meter readings) is executed twice:
as a nightly batch campaign and as a micro-batch streaming campaign.  The
example then contrasts detection quality, latency and throughput — the
batch/streaming interference a trainee explores in the energy challenge.

Run with::

    python examples/streaming_energy_monitor.py
"""

from __future__ import annotations

from repro import BDAaaSPlatform, RunComparator


def energy_spec(streaming: bool) -> dict:
    """The anomaly-detection campaign, in batch or streaming mode."""
    return {
        "name": "meter-anomalies",
        "purpose": "service_improvement",
        "policy": "gdpr_baseline",
        "source": {"scenario": "energy", "num_records": 6000,
                   "streaming": streaming, "batch_size": 500},
        "privacy": {"k_anonymity": 2},
        "deployment": {"num_partitions": 4, "max_batches": 10},
        "goals": [
            {
                "id": "detect",
                "task": "anomaly_detection",
                "params": {"value_field": "kwh", "label_field": "is_anomaly",
                           "group_field": "household_size", "z_threshold": 2.5},
                "objectives": [
                    {"indicator": "anomaly_recall", "target": 0.4},
                    {"indicator": "anomaly_precision", "target": 0.5, "hard": False},
                    {"indicator": "latency", "target": 10.0, "hard": False},
                ],
            }
        ],
    }


def main() -> None:
    platform = BDAaaSPlatform()
    utility = platform.register_user("grid-operator", role="analyst")
    workspace = platform.create_workspace(utility, "meter-monitoring")

    print("=== Nightly batch campaign ===")
    batch_run = platform.run_campaign(utility, workspace, energy_spec(streaming=False),
                                      option_label="batch")
    print(f"  detector precision: {batch_run.indicator('precision'):.3f}")
    print(f"  detector recall:    {batch_run.indicator('recall'):.3f}")
    print(f"  wall-clock:         {batch_run.indicator('execution_time_s'):.2f}s")
    print()

    print("=== Micro-batch streaming campaign ===")
    stream_run = platform.run_campaign(utility, workspace, energy_spec(streaming=True),
                                       option_label="streaming")
    print(f"  batches processed:  {stream_run.indicator('num_batches'):.0f}")
    print(f"  mean batch latency: {stream_run.indicator('mean_latency_s') * 1000:.1f} ms")
    print(f"  throughput:         "
          f"{stream_run.indicator('throughput_records_per_s'):.0f} records/s")
    print(f"  detector precision: {stream_run.indicator('precision'):.3f} "
          f"(last batch)")
    print()

    print("=== Batch vs. streaming, side by side ===")
    report = RunComparator(metric_keys=(
        "precision", "recall", "anomalies_flagged", "execution_time_s",
        "mean_latency_s", "throughput_records_per_s", "records_processed")) \
        .compare([batch_run, stream_run], labels=["batch", "streaming"])
    print(report.format_table())
    print()
    print("Reading the comparison: the batch run sees the whole history at once, so")
    print("its per-group statistics (and hence recall) are slightly better; the")
    print("streaming run bounds the reaction time to one batch interval, which is")
    print("what an operations team needs to dispatch an engineer early.")


if __name__ == "__main__":
    main()
