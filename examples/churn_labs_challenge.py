"""TOREADOR Labs: the trial-and-error loop on the churn challenge.

A trainee on the free-limited tier works through the telecom-churn challenge:
they try four alternative analytics options, compare the runs side by side
(the feature the paper highlights as missing from production platforms), and
get scored against the challenge's success criteria.

Run with::

    python examples/churn_labs_challenge.py
"""

from __future__ import annotations

from repro import (BDAaaSPlatform, ChallengeScorer, LabSession,
                   build_default_challenges)


def main() -> None:
    platform = BDAaaSPlatform()
    trainee = platform.register_user("ada", role="trainee", organisation="sme-telco")

    challenges = build_default_challenges()
    print(challenges.overview())
    print()

    challenge = challenges.get("churn-retention")
    session = LabSession(platform, trainee, challenge)

    print("=== Challenge brief ===")
    print(session.brief())
    print()
    print(f"Free-tier budget: {session.remaining_budget()} campaign executions")
    print()

    # Trial and error: one option per design dimension, four configurations.
    print("=== Running alternative options ===")
    for selections in (
        {"model": "baseline"},
        {"model": "logistic"},
        {"model": "tree"},
        {"model": "logistic", "features": "minimal"},
    ):
        trial = session.run_option(selections)
        if trial.succeeded:
            print(f"  {trial.label:35s} accuracy={trial.run.indicator('accuracy'):.3f} "
                  f"recall={trial.run.indicator('recall'):.3f} "
                  f"time={trial.run.indicator('execution_time_s'):.2f}s")
        else:
            print(f"  {trial.label:35s} FAILED: {trial.error}")
    print()

    # Compare the runs: who wins on which indicator, relative to the first run.
    print("=== Run comparison ===")
    report = session.compare()
    print(report.format_table())
    print(f"overall winner: {report.overall_winner()}")
    print()

    # Grade the session against the challenge's success criteria.
    print("=== Challenge score ===")
    score = ChallengeScorer().score(session)
    print(f"best trial:          {score.best_trial_label}")
    print(f"achievement points:  {score.achievement_points}")
    print(f"exploration points:  {score.exploration_points}")
    print(f"total:               {score.total_points} / 100  "
          f"({'PASSED' if score.passed else 'NOT PASSED'})")
    for line in score.feedback:
        print(f"  - {line}")
    print()
    print(f"Remaining free-tier budget: {session.remaining_budget()} executions")


if __name__ == "__main__":
    main()
