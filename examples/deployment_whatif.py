"""Deployment scouting: what-if analysis across cluster profiles.

A web-operations campaign is executed once, locally, and its measured
execution profile is replayed by the cluster simulator against every built-in
cluster profile.  This is how TOREADOR lets a customer "scout" the deployment
stage of a campaign before paying for infrastructure: the interference
between data volume, pipeline shape and cluster size becomes visible without
re-running anything.

Run with::

    python examples/deployment_whatif.py
"""

from __future__ import annotations

from repro import BDAaaSPlatform, DeploymentSimulator


def weblog_spec(num_records: int) -> dict:
    """Operational analytics over the web service logs."""
    return {
        "name": f"web-operations-{num_records}",
        "purpose": "service_improvement",
        "policy": "gdpr_baseline",
        "source": {"scenario": "web_logs", "num_records": num_records},
        "privacy": {"mask_identifiers": True},
        "deployment": {"num_partitions": 8},
        "goals": [
            {"id": "latency-by-service", "task": "aggregation",
             "params": {"group_field": "service", "value_field": "latency_ms",
                        "aggregation": "mean"}},
            {"id": "top-urls", "task": "ranking",
             "params": {"value_field": "latency_ms", "group_field": "url", "k": 5}},
            {"id": "error-hunt", "task": "anomaly_detection",
             "params": {"value_field": "latency_ms", "group_field": "service"}},
        ],
    }


def main() -> None:
    platform = BDAaaSPlatform()
    operator = platform.register_user("web-ops", role="analyst")
    workspace = platform.create_workspace(operator, "operations")

    for num_records in (5_000, 20_000):
        print(f"=== Campaign over {num_records} log lines ===")
        run = platform.run_campaign(operator, workspace, weblog_spec(num_records),
                                    option_label=f"{num_records}-records")
        print(f"  measured locally: {run.indicator('execution_time_s'):.2f}s wall clock, "
              f"{run.indicator('num_tasks'):.0f} tasks, "
              f"{run.indicator('shuffle_bytes') / 1024:.0f} KiB shuffled")
        print(f"  mean latency per service: "
              f"{[ (row['group'], round(row['value'], 1)) for row in run.artifacts['analytics-latency-by-service']['table'] ]}")
        print()
        print(f"  {'profile':12s} {'workers':>7s} {'est. wall clock':>15s} "
              f"{'est. cost':>10s}")
        for estimate in sorted(run.deployment_estimates,
                               key=lambda item: item["estimated_wall_clock_s"]):
            print(f"  {estimate['profile']:12s} {estimate['num_workers']:>7.0f} "
                  f"{estimate['estimated_wall_clock_s']:>14.2f}s "
                  f"${estimate['estimated_cost_usd']:>9.4f}")
        print()

    print("Scouting conclusion: at one day of logs the local executor is already")
    print("fast enough and every paid profile is wasted money; at a week of logs")
    print("the crossover appears — the medium profiles cut the wall-clock time for")
    print("cents, while the premium profile only pays off for much larger volumes.")

    simulator = DeploymentSimulator()
    print()
    print(f"Profiles known to the simulator: {sorted(simulator.profiles)}")


if __name__ == "__main__":
    main()
