"""The regulatory barrier made executable: privacy vs. utility on health data.

The hospital-readmission campaign runs under the strict health-data policy.
This example sweeps the declared k-anonymity level and shows how the compiler
always inserts the protection step the policy demands, how the achieved k and
the information loss grow with the requirement, and how much analytical
utility (classification accuracy) survives each level — the crossover the E5
benchmark measures systematically.

Run with::

    python examples/privacy_tradeoff.py
"""

from __future__ import annotations

from repro import BDAaaSPlatform


def readmission_spec(k_anonymity: int) -> dict:
    """The readmission campaign with an explicit k-anonymity requirement."""
    return {
        "name": f"readmission-k{k_anonymity}",
        "purpose": "research",
        "policy": "health_strict",
        "region": "eu",
        "source": {"scenario": "patients", "num_records": 5000},
        "privacy": {"k_anonymity": k_anonymity, "mask_identifiers": True},
        "deployment": {"num_partitions": 4},
        "goals": [
            {
                "id": "predict-readmission",
                "task": "classification",
                "params": {
                    "label": "readmitted",
                    "features": ["age", "length_of_stay", "treatment_cost"],
                    "categorical_features": ["diagnosis"],
                },
                "optimize_for": "interpretability",
                "objectives": [
                    {"indicator": "accuracy", "target": 0.6, "hard": False},
                    {"indicator": "k_anonymity", "target": 10},
                    {"indicator": "policy_violations", "target": 0, "comparator": "<="},
                ],
            }
        ],
    }


def main() -> None:
    platform = BDAaaSPlatform()
    researcher = platform.register_user("hospital-research", role="analyst")
    workspace = platform.create_workspace(researcher, "readmission-study")

    print("Policy in force: health_strict "
          "(mask identifiers, 10-anonymity, research purpose only, no raw export)")
    print()
    header = (f"{'declared k':>10s} {'achieved k':>10s} {'records kept':>12s} "
              f"{'info loss':>9s} {'accuracy':>8s} {'violations':>10s}")
    print(header)
    print("-" * len(header))

    for declared_k in (2, 10, 50, 200, 600):
        run = platform.run_campaign(researcher, workspace,
                                    readmission_spec(declared_k),
                                    option_label=f"k={declared_k}")
        print(f"{declared_k:>10d} "
              f"{run.indicator('achieved_k', 0):>10.0f} "
              f"{run.indicator('records_after', 0):>12.0f} "
              f"{run.indicator('information_loss', 0):>9.3f} "
              f"{run.indicator('accuracy', 0):>8.3f} "
              f"{run.indicator('policy_violations', 0):>10.0f}")

    print()
    print("Reading the table:")
    print(" - the policy minimum is 10: declaring k=2 still yields k>=10, because")
    print("   the compiler applies the stricter of the two requirements;")
    print(" - beyond the minimum, stronger anonymity forces coarser quasi-identifiers")
    print("   and suppresses more records, so information loss grows and accuracy")
    print("   drifts down — the cost of the regulatory barrier, now measurable")
    print("   instead of being a legal unknown.")
    print()

    comparison = platform.runner  # noqa: F841 - the run history lives in the workspace
    runs = platform.runs_for(workspace)
    from repro import RunComparator
    report = RunComparator(metric_keys=("accuracy", "achieved_k", "information_loss",
                                        "records_after", "policy_violations")) \
        .compare(runs, labels=[run.option_label for run in runs])
    print("=== Side-by-side comparison of the five runs ===")
    print(report.format_table())


if __name__ == "__main__":
    main()
