"""Quickstart: the BDAaaS function — goals in, executed pipeline out.

This is the smallest end-to-end use of the platform: declare a business goal
(predict churn with at least 65% accuracy, under the GDPR baseline policy),
let the compiler produce the pipeline, execute it, and read the results.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BDAaaSPlatform


def main() -> None:
    platform = BDAaaSPlatform()

    # 1. A customer account and a workspace to keep specs and run history.
    customer = platform.register_user("acme-telco", role="analyst")
    workspace = platform.create_workspace(customer, "churn-analytics")

    # 2. The declarative specification: business goals, no technology choices.
    spec = {
        "name": "churn-quickstart",
        "description": "Which customers are about to leave, and are we GDPR-clean?",
        "purpose": "analytics",
        "policy": "gdpr_baseline",
        "region": "eu",
        "source": {"scenario": "churn", "num_records": 8000},
        "goals": [
            {
                "id": "predict-churn",
                "task": "classification",
                "description": "Spot the customers the retention team should call",
                "params": {
                    "label": "churned",
                    "features": ["tenure_months", "monthly_charges",
                                 "num_support_calls", "data_usage_gb"],
                    "categorical_features": ["contract_type", "payment_method"],
                },
                "optimize_for": "quality",
                "objectives": [
                    {"indicator": "accuracy", "target": 0.65},
                    {"indicator": "execution_time", "target": 120, "hard": False},
                ],
            }
        ],
    }

    # 3. Preview what the compiler will build (design-time, nothing executes).
    campaign = platform.compile_campaign(spec)
    print("=== Compiled pipeline ===")
    print(campaign.procedural.describe())
    print()

    # 4. Execute: compile + quota check + provision + run + record.
    run = platform.run_campaign(customer, workspace, spec)

    print("=== Outcome ===")
    print(f"run id:               {run.run_id}")
    print(f"analytics option:     {run.option_signature}")
    print(f"accuracy:             {run.indicator('accuracy'):.3f}")
    print(f"recall:               {run.indicator('recall'):.3f}")
    print(f"achieved k-anonymity: {run.indicator('achieved_k'):.0f}")
    print(f"policy violations:    {run.indicator('policy_violations'):.0f}")
    print(f"execution time:       {run.indicator('execution_time_s'):.2f}s")
    print(f"all hard objectives:  {run.satisfied_all_hard_objectives}")
    print()

    print("=== Objective evaluation ===")
    for evaluation in run.objective_evaluations:
        status = "met" if evaluation.satisfied else "NOT met"
        print(f"  {evaluation.objective.describe():30s} "
              f"measured={evaluation.value:.3f}  [{status}]")
    print()

    print("=== What-if deployment estimates ===")
    for estimate in run.deployment_estimates:
        print(f"  {estimate['profile']:10s} "
              f"wall-clock ~{estimate['estimated_wall_clock_s']:.2f}s  "
              f"cost ~${estimate['estimated_cost_usd']:.4f}")
    print()

    print("=== Campaign report ===")
    print(run.artifacts["report"]["report"])


if __name__ == "__main__":
    main()
