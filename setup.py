"""Packaging script for the TOREADOR Labs reproduction library.

The classic ``setup.py`` form is used (instead of a PEP 517 build-system
declaration) so the package installs in fully offline environments that lack
the ``wheel`` build backend.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Scouting Big Data Campaigns using TOREADOR Labs' "
        "(EDBT 2017): a model-driven Big Data Analytics-as-a-Service platform "
        "with a trial-and-error training lab"
    ),
    author="Reproduction Authors",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
